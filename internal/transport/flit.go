package transport

import "fmt"

// Flit is a flow-control unit: the atom that switches and links move. A
// packet of N wire bytes becomes ceil(N/flitBytes) flits. The head flit
// carries a decoded copy of the header so switches can route without
// reparsing bytes; the byte stream remains the canonical content and is
// what reassembly decodes.
type Flit struct {
	PktID uint64
	VC    uint8 // virtual channel (VCNormal or VCLocked)
	Head  bool
	Tail  bool
	Hdr   Header // valid when Head
	Data  []byte
	Hops  uint8 // router traversals, for statistics
}

// Virtual channels. VCLocked exists so the packets of a legacy lock
// sequence can bypass normal traffic blocked by the sequence's own path
// reservations — the price the paper alludes to when it says READEX/LOCK
// "impact transport level".
const (
	VCNormal uint8 = 0
	VCLocked uint8 = 1
	NumVCs         = 2
)

// String renders a flit.
func (f Flit) String() string {
	role := "body"
	switch {
	case f.Head && f.Tail:
		role = "single"
	case f.Head:
		role = "head"
	case f.Tail:
		role = "tail"
	}
	return fmt.Sprintf("flit pkt#%d vc%d %s %dB", f.PktID, f.VC, role, len(f.Data))
}

// Packetize serializes a packet and splits it into flits of at most
// flitBytes data each. The packet's PayloadLen is set as a side effect.
func Packetize(p *Packet, flitBytes int) []Flit {
	return PacketizeInto(p, flitBytes, nil)
}

// PacketizeInto is Packetize reusing the caller's flit slice (overwritten
// from its start, grown as needed). The flit headers may be recycled once
// the flits have been copied onward; the serialized wire bytes they
// reference are freshly allocated per call, because they must survive
// until reassembly at the far endpoint.
func PacketizeInto(p *Packet, flitBytes int, flits []Flit) []Flit {
	if flitBytes <= 0 {
		panic(fmt.Sprintf("transport: flitBytes must be positive, got %d", flitBytes))
	}
	p.PayloadLen = uint32(len(p.Payload))
	wire := make([]byte, 0, HeaderBytes+len(p.Payload))
	wire = AppendHeader(wire, &p.Header)
	wire = append(wire, p.Payload...)
	return sliceFlits(p, wire, flitBytes, flits)
}

// sliceFlits splits a serialized wire image into flit views over it,
// reusing the caller's flit slice.
func sliceFlits(p *Packet, wire []byte, flitBytes int, flits []Flit) []Flit {
	vc := VCNormal
	if p.Locked {
		vc = VCLocked
	}
	n := (len(wire) + flitBytes - 1) / flitBytes
	if cap(flits) < n {
		flits = make([]Flit, 0, n)
	} else {
		flits = flits[:0]
	}
	for i := 0; i < n; i++ {
		lo := i * flitBytes
		hi := lo + flitBytes
		if hi > len(wire) {
			hi = len(wire)
		}
		f := Flit{
			PktID: p.ID,
			VC:    vc,
			Head:  i == 0,
			Tail:  i == n-1,
			Data:  wire[lo:hi],
		}
		if f.Head {
			f.Hdr = p.Header
		}
		flits = append(flits, f)
	}
	return flits
}

// Packetizer is a reusable packetization scratch: the wire-byte buffer
// and flit slice live on the Packetizer and are overwritten per call, so
// steady-state packetization performs zero allocations. The returned
// flits (and their Data slices) are valid until the next Packetize call.
type Packetizer struct {
	wire  []byte
	flits []Flit
}

// Packetize serializes a packet into flits of at most flitBytes data
// each, reusing the Packetizer's scratch. The packet's PayloadLen is set
// as a side effect.
func (z *Packetizer) Packetize(p *Packet, flitBytes int) []Flit {
	if flitBytes <= 0 {
		panic(fmt.Sprintf("transport: flitBytes must be positive, got %d", flitBytes))
	}
	p.PayloadLen = uint32(len(p.Payload))
	z.wire = AppendHeader(z.wire[:0], &p.Header)
	z.wire = append(z.wire, p.Payload...)
	z.flits = sliceFlits(p, z.wire, flitBytes, z.flits)
	return z.flits
}

// Reassembler rebuilds packets from a contiguous flit stream. Wormhole
// and store-and-forward switching both deliver the flits of one packet
// contiguously on a given ejection port, so a single accumulation buffer
// per port suffices.
type Reassembler struct {
	cur    []byte
	curID  uint64
	active bool
}

// Feed consumes one flit. When the flit completes a packet, the decoded
// packet is returned. Errors indicate fabric bugs (interleaving or
// corruption) and are fatal in tests.
func (r *Reassembler) Feed(f Flit) (*Packet, error) {
	return r.feed(f.PktID, f.Head, f.Tail, f.Data, nil)
}

// feed is the field-wise Feed the fabric hot path uses: endpoint
// ejection reads flit fields straight out of struct-of-arrays slots, so
// no Flit value is ever materialized. When pool is non-nil, completed
// packets draw their descriptor and payload storage from that free list
// (the ejecting endpoint's shard-local pool; see Network.Recycle); a nil
// pool allocates fresh, matching the exported Feed.
func (r *Reassembler) feed(pktID uint64, head, tail bool, data []byte, pool *pktPool) (*Packet, error) {
	if head {
		if r.active {
			return nil, fmt.Errorf("transport: head flit of pkt#%d interleaved into pkt#%d", pktID, r.curID)
		}
		r.active = true
		r.curID = pktID
		r.cur = r.cur[:0]
	} else {
		if !r.active {
			return nil, fmt.Errorf("transport: body flit of pkt#%d with no packet in progress", pktID)
		}
		if pktID != r.curID {
			return nil, fmt.Errorf("transport: flit of pkt#%d interleaved into pkt#%d", pktID, r.curID)
		}
	}
	r.cur = append(r.cur, data...)
	if !tail {
		return nil, nil
	}
	r.active = false
	hdr, err := DecodeHeader(r.cur)
	if err != nil {
		return nil, err
	}
	if int(hdr.PayloadLen) != len(r.cur)-HeaderBytes {
		return nil, fmt.Errorf("transport: pkt#%d declares %d payload bytes, carries %d",
			pktID, hdr.PayloadLen, len(r.cur)-HeaderBytes)
	}
	var pkt *Packet
	if pool != nil {
		pkt = pool.get()
	} else {
		pkt = &Packet{}
	}
	pkt.Header = hdr
	pkt.ID = pktID
	if hdr.PayloadLen > 0 {
		pkt.Payload = append(pkt.Payload[:0], r.cur[HeaderBytes:]...)
	}
	return pkt, nil
}

// FlitCount returns how many flits a packet of wireBytes needs.
func FlitCount(wireBytes, flitBytes int) int {
	return (wireBytes + flitBytes - 1) / flitBytes
}
