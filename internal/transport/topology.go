package transport

import (
	"fmt"

	"gonoc/internal/noctypes"
	"gonoc/internal/sim"
)

// This file builds fabrics. Topology choice is a transport-layer concern
// invisible to the transaction layer; all builders produce the same
// Network/Endpoint API.

// NewCrossbar builds a single-switch fabric: every node one hop from
// every other. This is the smallest real NoC and the default fabric for
// unit tests.
func NewCrossbar(clk *sim.Clock, cfg NetConfig, nodes []noctypes.NodeID) *Network {
	n := newNetwork(clk, cfg)
	r := newRouter(n, "xbar", len(nodes), RouterConfig{Mode: n.cfg.Mode, BufDepth: n.cfg.BufDepth, QoS: n.cfg.QoS, FlitBytes: n.cfg.FlitBytes})
	r.index = 0
	n.routers = []*Router{r}
	n.adj = [][]int{make([]int, len(nodes))}
	for i, node := range nodes {
		n.adj[0][i] = -1
		r.setRoute(node, i)
		n.attach(node, r, i)
	}
	if n.cfg.Shards > 1 {
		// One switch cannot be split, but its endpoints can: the single
		// router (and so every lane) lands on shard 0 and the endpoints
		// spread evenly, so injection-side work still parallelizes.
		eps := make([]int, len(nodes))
		for i := range eps {
			eps[i] = i * n.cfg.Shards / len(nodes)
		}
		n.planShards([]int{0}, eps)
	}
	return n
}

// Coord places a node on a mesh.
type Coord struct{ X, Y int }

// MeshSpec describes a W x H mesh with one endpoint per router.
type MeshSpec struct {
	W, H  int
	Nodes map[noctypes.NodeID]Coord
}

// Mesh port indices.
const (
	portLocal = 0
	portEast  = 1
	portWest  = 2
	portNorth = 3 // -Y
	portSouth = 4 // +Y
	meshPorts = 5
)

// NewMesh builds a 2-D mesh with dimension-ordered (XY) routing, which is
// deadlock-free for wormhole switching. Y grows downward.
func NewMesh(clk *sim.Clock, cfg NetConfig, spec MeshSpec) *Network {
	if spec.W <= 0 || spec.H <= 0 {
		panic("transport: mesh dimensions must be positive")
	}
	n := newNetwork(clk, cfg)
	rcfg := RouterConfig{Mode: n.cfg.Mode, BufDepth: n.cfg.BufDepth, QoS: n.cfg.QoS, FlitBytes: n.cfg.FlitBytes}
	idx := func(x, y int) int { return y*spec.W + x }

	n.routers = make([]*Router, spec.W*spec.H)
	n.adj = make([][]int, spec.W*spec.H)
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			r := newRouter(n, fmt.Sprintf("r%d.%d", x, y), meshPorts, rcfg)
			r.index = idx(x, y)
			n.routers[r.index] = r
			n.adj[r.index] = []int{-1, -1, -1, -1, -1}
		}
	}
	// Wire neighbour links: output port of A is the matching input lanes
	// of B.
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			r := n.routers[idx(x, y)]
			if x+1 < spec.W {
				e := n.routers[idx(x+1, y)]
				r.connectOut(portEast, [NumVCs]*flitQ{e.lanes[portWest][0], e.lanes[portWest][1]})
				n.adj[r.index][portEast] = e.index
				e.connectOut(portWest, [NumVCs]*flitQ{r.lanes[portEast][0], r.lanes[portEast][1]})
				n.adj[e.index][portWest] = r.index
			}
			if y+1 < spec.H {
				s := n.routers[idx(x, y+1)]
				r.connectOut(portSouth, [NumVCs]*flitQ{s.lanes[portNorth][0], s.lanes[portNorth][1]})
				n.adj[r.index][portSouth] = s.index
				s.connectOut(portNorth, [NumVCs]*flitQ{r.lanes[portSouth][0], r.lanes[portSouth][1]})
				n.adj[s.index][portNorth] = r.index
			}
		}
	}
	// Routing tables: XY (X first, then Y), then local.
	for node, c := range spec.Nodes {
		if c.X < 0 || c.X >= spec.W || c.Y < 0 || c.Y >= spec.H {
			panic(fmt.Sprintf("transport: node %v placed off-mesh at (%d,%d)", node, c.X, c.Y))
		}
	}
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			r := n.routers[idx(x, y)]
			for node, c := range spec.Nodes {
				switch {
				case c.X > x:
					r.setRoute(node, portEast)
				case c.X < x:
					r.setRoute(node, portWest)
				case c.Y > y:
					r.setRoute(node, portSouth)
				case c.Y < y:
					r.setRoute(node, portNorth)
				default:
					r.setRoute(node, portLocal)
				}
			}
		}
	}
	// Attach endpoints in a deterministic order.
	for _, node := range sortedNodes(spec.Nodes) {
		c := spec.Nodes[node]
		n.attach(node, n.routers[idx(c.X, c.Y)], portLocal)
	}
	if n.cfg.Shards > 1 {
		n.planShards(meshShards(n.cfg.Shards, spec.W, spec.H), nil)
	}
	return n
}

// Ring port indices.
const (
	ringLocal = 0
	ringCW    = 1 // toward index+1 (mod N)
	ringCCW   = 2 // toward index-1 (mod N)
	ringPorts = 3
)

// NewRing builds a bidirectional ring with shortest-path routing
// (half-way ties split by parity). Each direction is a unidirectional
// ring of links, which closes a deadlock cycle; the builder breaks it
// with two cooperating mechanisms. Dateline VC switching (the classic
// Dally/Seitz scheme over the fabric's two VC lanes): packets enter the
// ring on VC0 and switch to VC1 crossing the wrap link (N-1 -> 0
// clockwise, 0 -> N-1 counter-clockwise); minimal routing never crosses
// a dateline twice, so the VC1 buffer chain is acyclic. Virtual-cut-
// through admission (RouterConfig.CutThrough): outputs are granted only
// with whole-packet space downstream, so a held output always drains
// and the shared physical link cannot re-close the cycle the VCs break
// (BufDepth must therefore hold the largest packet, checked at
// TrySend). The VC rewrite repurposes the lane the legacy-lock service
// uses on other fabrics, so rings do not support lock sequences.
func NewRing(clk *sim.Clock, cfg NetConfig, nodes []noctypes.NodeID) *Network {
	N := len(nodes)
	if N < 2 {
		panic(fmt.Sprintf("transport: ring needs at least 2 nodes, got %d", N))
	}
	if cfg.LegacyLock {
		panic("transport: ring fabrics do not support the legacy-lock service (the lock VC is the dateline escape lane)")
	}
	n := newNetwork(clk, cfg)
	n.cutThrough = true
	rcfg := RouterConfig{Mode: n.cfg.Mode, BufDepth: n.cfg.BufDepth, QoS: n.cfg.QoS,
		CutThrough: true, FlitBytes: n.cfg.FlitBytes}

	n.routers = make([]*Router, N)
	n.adj = make([][]int, N)
	for i := range nodes {
		r := newRouter(n, fmt.Sprintf("ring%d", i), ringPorts, rcfg)
		r.index = i
		n.routers[i] = r
		n.adj[i] = []int{-1, -1, -1}
	}
	// Neighbour links: lanes[p] receives from the neighbour in direction p.
	for i, r := range n.routers {
		nxt := n.routers[(i+1)%N]
		r.connectOut(ringCW, [NumVCs]*flitQ{nxt.lanes[ringCCW][0], nxt.lanes[ringCCW][1]})
		n.adj[i][ringCW] = nxt.index
		nxt.connectOut(ringCCW, [NumVCs]*flitQ{r.lanes[ringCW][0], r.lanes[ringCW][1]})
		n.adj[nxt.index][ringCCW] = i
	}
	// Routing tables: shortest direction. Half-way-around ties split by
	// source parity so the two unidirectional rings carry equal load
	// under uniform traffic (sending every tie clockwise would load that
	// ring ~2x; source+destination parity would be degenerate, because
	// a tie destination is i+N/2 and (2i+N/2) mod 2 is the same for
	// every i). Ties only arise at the source router — every later hop
	// is strictly closer — so the split is consistent along the path,
	// still minimal, and the dateline argument is unaffected.
	for i, r := range n.routers {
		for j, node := range nodes {
			fwd := (j - i + N) % N
			switch {
			case fwd == 0:
				r.setRoute(node, ringLocal)
			case 2*fwd < N || (2*fwd == N && i&1 == 0):
				r.setRoute(node, ringCW)
			default:
				r.setRoute(node, ringCCW)
			}
		}
	}
	// Dateline VC switching: injected packets start on VC0; crossing the
	// wrap link in either direction moves them to VC1.
	for _, r := range n.routers {
		r.setVCOut(ringLocal, ringCW, 0)
		r.setVCOut(ringLocal, ringCCW, 0)
	}
	for p := 0; p < ringPorts; p++ {
		n.routers[N-1].setVCOut(p, ringCW, 1)
		n.routers[0].setVCOut(p, ringCCW, 1)
	}
	for i, node := range nodes {
		n.attach(node, n.routers[i], ringLocal)
	}
	if n.cfg.Shards > 1 {
		n.planShards(arcShards(n.cfg.Shards, N), nil)
	}
	return n
}

// NewTorus builds a 2-D torus: the mesh of NewMesh (same MeshSpec,
// same port layout) plus wraparound links in every dimension of size >=
// 2, with dimension-ordered routing that takes the shorter way around
// each ring (half-way ties split by parity). Every dimension is a pair
// of unidirectional rings, so deadlock freedom uses NewRing's recipe
// per dimension: dateline VC switching — packets enter each dimension
// on VC0 (the dimension turn resets the VC) and move to VC1 crossing
// that dimension's wrap link — plus virtual-cut-through admission so a
// held output never stalls mid-packet (see NewRing). As there, the
// escape lane doubles as the lock VC, so tori do not support lock
// sequences.
func NewTorus(clk *sim.Clock, cfg NetConfig, spec MeshSpec) *Network {
	if spec.W <= 0 || spec.H <= 0 {
		panic("transport: torus dimensions must be positive")
	}
	if cfg.LegacyLock {
		panic("transport: torus fabrics do not support the legacy-lock service (the lock VC is the dateline escape lane)")
	}
	n := newNetwork(clk, cfg)
	n.cutThrough = true
	rcfg := RouterConfig{Mode: n.cfg.Mode, BufDepth: n.cfg.BufDepth, QoS: n.cfg.QoS,
		CutThrough: true, FlitBytes: n.cfg.FlitBytes}
	idx := func(x, y int) int { return ((y+spec.H)%spec.H)*spec.W + (x+spec.W)%spec.W }

	n.routers = make([]*Router, spec.W*spec.H)
	n.adj = make([][]int, spec.W*spec.H)
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			r := newRouter(n, fmt.Sprintf("t%d.%d", x, y), meshPorts, rcfg)
			r.index = idx(x, y)
			n.routers[r.index] = r
			n.adj[r.index] = []int{-1, -1, -1, -1, -1}
		}
	}
	// Wire every router's own outputs; wrap links close each row and
	// column into a ring. A dimension of size 1 stays unwired.
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			r := n.routers[idx(x, y)]
			if spec.W > 1 {
				e := n.routers[idx(x+1, y)]
				r.connectOut(portEast, [NumVCs]*flitQ{e.lanes[portWest][0], e.lanes[portWest][1]})
				n.adj[r.index][portEast] = e.index
				w := n.routers[idx(x-1, y)]
				r.connectOut(portWest, [NumVCs]*flitQ{w.lanes[portEast][0], w.lanes[portEast][1]})
				n.adj[r.index][portWest] = w.index
			}
			if spec.H > 1 {
				s := n.routers[idx(x, y+1)]
				r.connectOut(portSouth, [NumVCs]*flitQ{s.lanes[portNorth][0], s.lanes[portNorth][1]})
				n.adj[r.index][portSouth] = s.index
				nn := n.routers[idx(x, y-1)]
				r.connectOut(portNorth, [NumVCs]*flitQ{nn.lanes[portSouth][0], nn.lanes[portSouth][1]})
				n.adj[r.index][portNorth] = nn.index
			}
		}
	}
	// Routing tables: X ring first, then Y ring, shorter way around each.
	for node, c := range spec.Nodes {
		if c.X < 0 || c.X >= spec.W || c.Y < 0 || c.Y >= spec.H {
			panic(fmt.Sprintf("transport: node %v placed off-torus at (%d,%d)", node, c.X, c.Y))
		}
	}
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			r := n.routers[idx(x, y)]
			for node, c := range spec.Nodes {
				dx := ((c.X-x)%spec.W + spec.W) % spec.W
				dy := ((c.Y-y)%spec.H + spec.H) % spec.H
				// Half-way-around ties split by parity, as in NewRing,
				// so both directions of each ring carry equal load.
				goEast := 2*dx < spec.W || (2*dx == spec.W && (x+c.Y)&1 == 0)
				goSouth := 2*dy < spec.H || (2*dy == spec.H && (y+c.X)&1 == 0)
				switch {
				case dx != 0 && goEast:
					r.setRoute(node, portEast)
				case dx != 0:
					r.setRoute(node, portWest)
				case dy != 0 && goSouth:
					r.setRoute(node, portSouth)
				case dy != 0:
					r.setRoute(node, portNorth)
				default:
					r.setRoute(node, portLocal)
				}
			}
		}
	}
	// Dateline VC switching per dimension. Dimension-ordered routing
	// means Y outputs are entered from local or X inputs (a turn, which
	// resets to VC0) or continued from Y inputs (which keeps the VC); on
	// a dateline output every arrival leaves on VC1.
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			r := n.routers[idx(x, y)]
			if spec.W > 1 {
				for _, d := range []struct {
					out      int
					dateline bool
				}{{portEast, x == spec.W-1}, {portWest, x == 0}} {
					if d.dateline {
						for in := 0; in < meshPorts; in++ {
							r.setVCOut(in, d.out, 1)
						}
					} else {
						r.setVCOut(portLocal, d.out, 0)
					}
				}
			}
			if spec.H > 1 {
				for _, d := range []struct {
					out      int
					dateline bool
				}{{portSouth, y == spec.H-1}, {portNorth, y == 0}} {
					if d.dateline {
						for in := 0; in < meshPorts; in++ {
							r.setVCOut(in, d.out, 1)
						}
					} else {
						r.setVCOut(portLocal, d.out, 0)
						r.setVCOut(portEast, d.out, 0)
						r.setVCOut(portWest, d.out, 0)
					}
				}
			}
		}
	}
	for _, node := range sortedNodes(spec.Nodes) {
		c := spec.Nodes[node]
		n.attach(node, n.routers[idx(c.X, c.Y)], portLocal)
	}
	if n.cfg.Shards > 1 {
		n.planShards(meshShards(n.cfg.Shards, spec.W, spec.H), nil)
	}
	return n
}

func sortedNodes(m map[noctypes.NodeID]Coord) []noctypes.NodeID {
	out := make([]noctypes.NodeID, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NewTree builds a two-level tree: leaf switches host up to fanout
// endpoints each and connect to one root switch. Cycle-free, so
// deadlock-free; the root is the bandwidth bottleneck by construction —
// useful for QoS experiments.
func NewTree(clk *sim.Clock, cfg NetConfig, fanout int, nodes []noctypes.NodeID) *Network {
	if fanout <= 0 {
		panic("transport: tree fanout must be positive")
	}
	n := newNetwork(clk, cfg)
	rcfg := RouterConfig{Mode: n.cfg.Mode, BufDepth: n.cfg.BufDepth, QoS: n.cfg.QoS, FlitBytes: n.cfg.FlitBytes}

	numLeaves := (len(nodes) + fanout - 1) / fanout
	root := newRouter(n, "root", numLeaves, rcfg)
	root.index = 0
	n.routers = append(n.routers, root)
	n.adj = append(n.adj, make([]int, numLeaves))

	for l := 0; l < numLeaves; l++ {
		lo := l * fanout
		hi := lo + fanout
		if hi > len(nodes) {
			hi = len(nodes)
		}
		local := nodes[lo:hi]
		leaf := newRouter(n, fmt.Sprintf("leaf%d", l), len(local)+1, rcfg)
		leaf.index = len(n.routers)
		n.routers = append(n.routers, leaf)
		n.adj = append(n.adj, make([]int, len(local)+1))
		upPort := len(local)

		// Leaf <-> root links.
		leaf.connectOut(upPort, [NumVCs]*flitQ{root.lanes[l][0], root.lanes[l][1]})
		n.adj[leaf.index][upPort] = 0
		root.connectOut(l, [NumVCs]*flitQ{leaf.lanes[upPort][0], leaf.lanes[upPort][1]})
		n.adj[0][l] = leaf.index

		for i, node := range local {
			n.adj[leaf.index][i] = -1
			leaf.setRoute(node, i)
			root.setRoute(node, l)
			n.attach(node, leaf, i)
		}
		// Non-local destinations leave through the up port.
		for _, other := range nodes {
			isLocal := false
			for _, ln := range local {
				if ln == other {
					isLocal = true
					break
				}
			}
			if !isLocal {
				leaf.setRoute(other, upPort)
			}
		}
	}
	if n.cfg.Shards > 1 {
		// Subtree partitioning: leaves spread evenly across shards; the
		// root (every subtree's shared trunk) lands on shard 0.
		rs := make([]int, len(n.routers))
		for l := 0; l < numLeaves; l++ {
			rs[l+1] = l * n.cfg.Shards / numLeaves
		}
		n.planShards(rs, nil)
	}
	return n
}
