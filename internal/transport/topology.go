package transport

import (
	"fmt"

	"gonoc/internal/noctypes"
	"gonoc/internal/sim"
)

// This file builds fabrics. Topology choice is a transport-layer concern
// invisible to the transaction layer; all builders produce the same
// Network/Endpoint API.

// NewCrossbar builds a single-switch fabric: every node one hop from
// every other. This is the smallest real NoC and the default fabric for
// unit tests.
func NewCrossbar(clk *sim.Clock, cfg NetConfig, nodes []noctypes.NodeID) *Network {
	n := newNetwork(clk, cfg)
	r := newRouter(clk, "xbar", len(nodes), RouterConfig{Mode: n.cfg.Mode, BufDepth: n.cfg.BufDepth, QoS: n.cfg.QoS})
	r.index = 0
	n.routers = []*Router{r}
	n.adj = [][]int{make([]int, len(nodes))}
	for i, node := range nodes {
		n.adj[0][i] = -1
		r.setRoute(node, i)
		n.attach(node, r, i)
	}
	return n
}

// Coord places a node on a mesh.
type Coord struct{ X, Y int }

// MeshSpec describes a W x H mesh with one endpoint per router.
type MeshSpec struct {
	W, H  int
	Nodes map[noctypes.NodeID]Coord
}

// Mesh port indices.
const (
	portLocal = 0
	portEast  = 1
	portWest  = 2
	portNorth = 3 // -Y
	portSouth = 4 // +Y
	meshPorts = 5
)

// NewMesh builds a 2-D mesh with dimension-ordered (XY) routing, which is
// deadlock-free for wormhole switching. Y grows downward.
func NewMesh(clk *sim.Clock, cfg NetConfig, spec MeshSpec) *Network {
	if spec.W <= 0 || spec.H <= 0 {
		panic("transport: mesh dimensions must be positive")
	}
	n := newNetwork(clk, cfg)
	rcfg := RouterConfig{Mode: n.cfg.Mode, BufDepth: n.cfg.BufDepth, QoS: n.cfg.QoS}
	idx := func(x, y int) int { return y*spec.W + x }

	n.routers = make([]*Router, spec.W*spec.H)
	n.adj = make([][]int, spec.W*spec.H)
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			r := newRouter(clk, fmt.Sprintf("r%d.%d", x, y), meshPorts, rcfg)
			r.index = idx(x, y)
			n.routers[r.index] = r
			n.adj[r.index] = []int{-1, -1, -1, -1, -1}
		}
	}
	// Wire neighbour links: output port of A is the matching input lanes
	// of B.
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			r := n.routers[idx(x, y)]
			if x+1 < spec.W {
				e := n.routers[idx(x+1, y)]
				r.connectOut(portEast, [NumVCs]*sim.Pipe[Flit]{e.lanes[portWest][0], e.lanes[portWest][1]})
				n.adj[r.index][portEast] = e.index
				e.connectOut(portWest, [NumVCs]*sim.Pipe[Flit]{r.lanes[portEast][0], r.lanes[portEast][1]})
				n.adj[e.index][portWest] = r.index
			}
			if y+1 < spec.H {
				s := n.routers[idx(x, y+1)]
				r.connectOut(portSouth, [NumVCs]*sim.Pipe[Flit]{s.lanes[portNorth][0], s.lanes[portNorth][1]})
				n.adj[r.index][portSouth] = s.index
				s.connectOut(portNorth, [NumVCs]*sim.Pipe[Flit]{r.lanes[portSouth][0], r.lanes[portSouth][1]})
				n.adj[s.index][portNorth] = r.index
			}
		}
	}
	// Routing tables: XY (X first, then Y), then local.
	for node, c := range spec.Nodes {
		if c.X < 0 || c.X >= spec.W || c.Y < 0 || c.Y >= spec.H {
			panic(fmt.Sprintf("transport: node %v placed off-mesh at (%d,%d)", node, c.X, c.Y))
		}
	}
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			r := n.routers[idx(x, y)]
			for node, c := range spec.Nodes {
				switch {
				case c.X > x:
					r.setRoute(node, portEast)
				case c.X < x:
					r.setRoute(node, portWest)
				case c.Y > y:
					r.setRoute(node, portSouth)
				case c.Y < y:
					r.setRoute(node, portNorth)
				default:
					r.setRoute(node, portLocal)
				}
			}
		}
	}
	// Attach endpoints in a deterministic order.
	for _, node := range sortedNodes(spec.Nodes) {
		c := spec.Nodes[node]
		n.attach(node, n.routers[idx(c.X, c.Y)], portLocal)
	}
	return n
}

func sortedNodes(m map[noctypes.NodeID]Coord) []noctypes.NodeID {
	out := make([]noctypes.NodeID, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NewTree builds a two-level tree: leaf switches host up to fanout
// endpoints each and connect to one root switch. Cycle-free, so
// deadlock-free; the root is the bandwidth bottleneck by construction —
// useful for QoS experiments.
func NewTree(clk *sim.Clock, cfg NetConfig, fanout int, nodes []noctypes.NodeID) *Network {
	if fanout <= 0 {
		panic("transport: tree fanout must be positive")
	}
	n := newNetwork(clk, cfg)
	rcfg := RouterConfig{Mode: n.cfg.Mode, BufDepth: n.cfg.BufDepth, QoS: n.cfg.QoS}

	numLeaves := (len(nodes) + fanout - 1) / fanout
	root := newRouter(clk, "root", numLeaves, rcfg)
	root.index = 0
	n.routers = append(n.routers, root)
	n.adj = append(n.adj, make([]int, numLeaves))

	for l := 0; l < numLeaves; l++ {
		lo := l * fanout
		hi := lo + fanout
		if hi > len(nodes) {
			hi = len(nodes)
		}
		local := nodes[lo:hi]
		leaf := newRouter(clk, fmt.Sprintf("leaf%d", l), len(local)+1, rcfg)
		leaf.index = len(n.routers)
		n.routers = append(n.routers, leaf)
		n.adj = append(n.adj, make([]int, len(local)+1))
		upPort := len(local)

		// Leaf <-> root links.
		leaf.connectOut(upPort, [NumVCs]*sim.Pipe[Flit]{root.lanes[l][0], root.lanes[l][1]})
		n.adj[leaf.index][upPort] = 0
		root.connectOut(l, [NumVCs]*sim.Pipe[Flit]{leaf.lanes[upPort][0], leaf.lanes[upPort][1]})
		n.adj[0][l] = leaf.index

		for i, node := range local {
			n.adj[leaf.index][i] = -1
			leaf.setRoute(node, i)
			root.setRoute(node, l)
			n.attach(node, leaf, i)
		}
		// Non-local destinations leave through the up port.
		for _, other := range nodes {
			isLocal := false
			for _, ln := range local {
				if ln == other {
					isLocal = true
					break
				}
			}
			if !isLocal {
				leaf.setRoute(other, upPort)
			}
		}
	}
	return n
}
