package transport

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"gonoc/internal/noctypes"
	"gonoc/internal/obs"
	"gonoc/internal/sim"
)

// meshNet builds a W x H mesh with one endpoint per router and the given
// shard count (0 = serial).
func meshNet(w, h, shards int) (*sim.Clock, *Network, []*Endpoint) {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "t", sim.Nanosecond, 0)
	spec := MeshSpec{W: w, H: h, Nodes: map[noctypes.NodeID]Coord{}}
	nodes := make([]noctypes.NodeID, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := noctypes.NodeID(y*w + x + 1)
			spec.Nodes[id] = Coord{X: x, Y: y}
			nodes = append(nodes, id)
		}
	}
	net := NewMesh(clk, NetConfig{BufDepth: 8, Shards: shards}, spec)
	eps := make([]*Endpoint, len(nodes))
	for i, id := range nodes {
		eps[i] = net.Endpoint(id)
	}
	return clk, net, eps
}

func TestShardPartitionDefaults(t *testing.T) {
	t.Run("mesh-quadrants", func(t *testing.T) {
		_, net, _ := meshNet(4, 4, 4)
		if net.NumShards() != 4 {
			t.Fatalf("NumShards = %d, want 4", net.NumShards())
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				want := y/2*2 + x/2 // 2x2 blocks of routers
				if got := net.ShardOf(y*4 + x); got != want {
					t.Errorf("router (%d,%d) on shard %d, want quadrant %d", x, y, got, want)
				}
			}
		}
	})
	t.Run("ring-arcs", func(t *testing.T) {
		k := sim.NewKernel()
		clk := sim.NewClock(k, "t", sim.Nanosecond, 0)
		nodes := make([]noctypes.NodeID, 8)
		for i := range nodes {
			nodes[i] = noctypes.NodeID(i + 1)
		}
		net := NewRing(clk, NetConfig{BufDepth: 8, Shards: 2}, nodes)
		for i := 0; i < 8; i++ {
			want := i / 4 // two contiguous arcs
			if got := net.ShardOf(i); got != want {
				t.Errorf("ring router %d on shard %d, want %d", i, got, want)
			}
		}
	})
	t.Run("tree-subtrees", func(t *testing.T) {
		k := sim.NewKernel()
		clk := sim.NewClock(k, "t", sim.Nanosecond, 0)
		nodes := make([]noctypes.NodeID, 8)
		for i := range nodes {
			nodes[i] = noctypes.NodeID(i + 1)
		}
		net := NewTree(clk, NetConfig{BufDepth: 8, Shards: 2}, 2, nodes)
		if got := net.ShardOf(0); got != 0 {
			t.Errorf("tree root on shard %d, want 0", got)
		}
		// 4 leaves at router indices 1..4: first two on shard 0, rest on 1.
		for l := 0; l < 4; l++ {
			want := l / 2
			if got := net.ShardOf(l + 1); got != want {
				t.Errorf("leaf %d on shard %d, want %d", l, got, want)
			}
		}
	})
	t.Run("crossbar-endpoint-spread", func(t *testing.T) {
		k := sim.NewKernel()
		clk := sim.NewClock(k, "t", sim.Nanosecond, 0)
		nodes := make([]noctypes.NodeID, 8)
		for i := range nodes {
			nodes[i] = noctypes.NodeID(i + 1)
		}
		net := NewCrossbar(clk, NetConfig{BufDepth: 8, Shards: 4}, nodes)
		if got := net.ShardOf(0); got != 0 {
			t.Errorf("crossbar switch on shard %d, want 0", got)
		}
		for i, id := range nodes {
			if got := net.Endpoint(id).Shard(); got != i/2 {
				t.Errorf("endpoint %d on shard %d, want %d", i, got, i/2)
			}
		}
	})
}

func TestShardedProbeRejected(t *testing.T) {
	_, net, _ := meshNet(4, 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SetProbe on a sharded fabric did not panic")
		}
	}()
	net.SetProbe(probeStub{})
}

// probeStub is the minimal obs.Probe for the rejection test.
type probeStub struct{}

func (probeStub) Event(ev obs.Event) {}

// transitKey flattens the comparable fields of one completed journey.
type transitKey struct {
	id, src, dst              uint64
	queued, injected, ejected int64
	hops                      int
	payloadLen                int
	payloadHash               uint64
}

// driveMesh runs a fixed deterministic workload on a 4x4 mesh for the
// given cycle count and returns every received packet (as formatted
// strings, in per-endpoint receive order) plus sorted transit records
// and the fabric flit total.
func driveMesh(shards, cycles int) (rx []string, transits []transitKey, inj, ej, flits uint64) {
	clk, net, eps := meshNet(4, 4, shards)
	// Flatten each record as it arrives: the packet is recycled by the
	// consumer loop below, so its fields must be captured in the callback.
	net.OnTransit = func(r TransitRecord) {
		var h uint64
		for _, b := range r.Pkt.Payload {
			h = h*131 + uint64(b)
		}
		transits = append(transits, transitKey{
			id: r.Pkt.ID, src: uint64(r.Pkt.Src), dst: uint64(r.Pkt.Dst),
			queued: r.QueuedCycle, injected: r.InjectCycle, ejected: r.EjectCycle,
			hops: r.Hops, payloadLen: len(r.Pkt.Payload), payloadHash: h,
		})
	}

	// Per-endpoint xorshift streams: the driven workload is a pure
	// function of the endpoint index, never of shard count.
	rngs := make([]uint64, len(eps))
	for i := range rngs {
		rngs[i] = uint64(i)*0x9E3779B97F4A7C15 + 0x85EBCA6B
	}
	next := func(i int) uint64 {
		rngs[i] ^= rngs[i] << 13
		rngs[i] ^= rngs[i] >> 7
		rngs[i] ^= rngs[i] << 17
		return rngs[i]
	}
	var seq byte
	var rxBuf []*Packet
	for c := 0; c < cycles; c++ {
		for i, ep := range eps {
			if next(i)%4 != 0 || !ep.CanSend() {
				continue
			}
			d := int(next(i) % uint64(len(eps)))
			if d == i {
				continue
			}
			seq++
			p := &Packet{Header: Header{Kind: KindReq, Src: ep.ID(), Dst: eps[d].ID()},
				Payload: bytes.Repeat([]byte{seq}, 8+int(next(i)%17))}
			ep.TrySend(p)
		}
		clk.RunCycles(1)
		for i, ep := range eps {
			rxBuf = ep.RecvAll(rxBuf[:0])
			for _, p := range rxBuf {
				rx = append(rx, fmt.Sprintf("c%d ep%d id=%d src=%d dst=%d pay=%x",
					clk.Cycle(), i, p.ID, p.Src, p.Dst, p.Payload))
				ep.Recycle(p)
			}
		}
	}
	sort.Slice(transits, func(i, j int) bool {
		if transits[i].ejected != transits[j].ejected {
			return transits[i].ejected < transits[j].ejected
		}
		return transits[i].id < transits[j].id
	})
	return rx, transits, net.Injected(), net.Ejected(), fabricFlits(net)
}

// TestForkJoinByteIdentical drives the same workload on a serial fabric
// and on fork-join partitions and requires identical delivery: every
// received packet (bytes, order, cycle), every transit record, and the
// fabric-wide counters.
func TestForkJoinByteIdentical(t *testing.T) {
	const cycles = 600
	rx1, tr1, inj1, ej1, fl1 := driveMesh(0, cycles)
	if ej1 == 0 || fl1 == 0 {
		t.Fatal("serial reference run delivered nothing")
	}
	for _, shards := range []int{2, 4} {
		rxN, trN, injN, ejN, flN := driveMesh(shards, cycles)
		if injN != inj1 || ejN != ej1 || flN != fl1 {
			t.Fatalf("shards=%d counters diverge: injected %d/%d ejected %d/%d flits %d/%d",
				shards, injN, inj1, ejN, ej1, flN, fl1)
		}
		if len(rxN) != len(rx1) {
			t.Fatalf("shards=%d delivered %d packets, serial %d", shards, len(rxN), len(rx1))
		}
		for i := range rx1 {
			if rxN[i] != rx1[i] {
				t.Fatalf("shards=%d delivery %d diverges:\n  serial:  %s\n  sharded: %s",
					shards, i, rx1[i], rxN[i])
			}
		}
		if len(trN) != len(tr1) {
			t.Fatalf("shards=%d recorded %d transits, serial %d", shards, len(trN), len(tr1))
		}
		for i := range tr1 {
			if trN[i] != tr1[i] {
				t.Fatalf("shards=%d transit %d diverges:\n  serial:  %+v\n  sharded: %+v",
					shards, i, tr1[i], trN[i])
			}
		}
	}
}
