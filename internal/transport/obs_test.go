package transport

import (
	"testing"

	"gonoc/internal/noctypes"
	"gonoc/internal/obs"
	"gonoc/internal/sim"
)

// xferOnce pushes one 32-byte-payload packet from src to dst and runs
// the clock until it arrives, recycling the delivered packet the way a
// pooled steady-state consumer does.
func xferOnce(t testing.TB, clk *sim.Clock, src, dst *Endpoint, payload []byte) {
	p := &Packet{Header: Header{Kind: KindReq, Dst: dst.ID(), Src: src.ID()}, Payload: payload}
	if !src.TrySend(p) {
		t.Fatal("TrySend refused at steady state")
	}
	for i := 0; i < 100; i++ {
		clk.RunCycles(1)
		if rx, ok := dst.Recv(); ok {
			src.Network().Recycle(rx)
			return
		}
	}
	t.Fatal("packet did not arrive")
}

// TestDisabledProbeHotPathAllocs pins the nil-probe fast path: with
// instrumentation disabled (the default), a steady-state packet
// transfer must not allocate beyond this harness's own send packet —
// the fabric itself is at 0 allocs/op (BENCH_transport.json, enforced
// by the CI bench guard). The probe hooks are nil checks only; if one
// of them starts allocating, this fails before the bench guard does.
func TestDisabledProbeHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	k := sim.NewKernel()
	clk := sim.NewClock(k, "bench", sim.Nanosecond, 0)
	net := NewCrossbar(clk, NetConfig{BufDepth: 16}, []noctypes.NodeID{1, 2})
	src, dst := net.Endpoint(1), net.Endpoint(2)
	payload := make([]byte, 32)
	for i := 0; i < 50; i++ { // reach steady state (scratch buffers sized, pool primed)
		xferOnce(t, clk, src, dst, payload)
	}
	// Exactly one allocation remains: xferOnce's own fresh send packet
	// (the fabric copies and never retains it; TestFabricTransferZeroAlloc
	// pins the fully pooled path at zero).
	got := testing.AllocsPerRun(200, func() { xferOnce(t, clk, src, dst, payload) })
	if got > 1 {
		t.Fatalf("nil-probe transfer allocates %.1f/packet, want <= 1 (the harness's send packet)", got)
	}
}

// TestProbeObservesTransfer is the enabled-side counterpart: every hook
// the fabric gained fires, events are self-consistent, and the stall
// counter matches the probe's stall events.
func TestProbeObservesTransfer(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "probe", sim.Nanosecond, 0)
	net := NewCrossbar(clk, NetConfig{BufDepth: 16}, []noctypes.NodeID{1, 2})
	cp := &obs.CountingProbe{}
	net.SetProbe(cp)
	if net.Probe() == nil {
		t.Fatal("Probe() lost the probe")
	}
	src, dst := net.Endpoint(1), net.Endpoint(2)
	const pkts = 5
	for i := 0; i < pkts; i++ {
		xferOnce(t, clk, src, dst, make([]byte, 32))
	}
	for _, k := range []obs.Kind{obs.KindQueued, obs.KindInject, obs.KindVCAlloc, obs.KindEject} {
		if cp.Counts[k] != pkts {
			t.Errorf("%v fired %d times, want %d", k, cp.Counts[k], pkts)
		}
	}
	// 32B payload + 16B header over 8B flits = 6 flits per packet, each
	// crossing exactly one switch output on a crossbar.
	wantFlits := uint64(pkts) * uint64(FlitCount(HeaderBytes+32, 8))
	if cp.Counts[obs.KindFlit] != wantFlits {
		t.Errorf("flit events %d, want %d", cp.Counts[obs.KindFlit], wantFlits)
	}
	if cp.Counts[obs.KindFlit] != net.Routers()[0].Stats().FlitsMoved {
		t.Errorf("flit events %d != router counter %d",
			cp.Counts[obs.KindFlit], net.Routers()[0].Stats().FlitsMoved)
	}
	if cp.Counts[obs.KindBufSample] == 0 {
		t.Error("no buffer-occupancy samples")
	}
	var stalls uint64
	for _, s := range net.Routers()[0].Stats().OutStall {
		stalls += s
	}
	if cp.Counts[obs.KindStall] != stalls {
		t.Errorf("stall events %d != router OutStall sum %d", cp.Counts[obs.KindStall], stalls)
	}
}

// TestRouterNamerWiring asserts SetProbe hands router names to sinks
// that want them.
func TestRouterNamerWiring(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "names", sim.Nanosecond, 0)
	spec := MeshSpec{W: 2, H: 1, Nodes: map[noctypes.NodeID]Coord{1: {0, 0}, 2: {1, 0}}}
	net := NewMesh(clk, NetConfig{}, spec)
	mon := obs.NewLinkMonitor(0)
	net.SetProbe(mon)
	src, dst := net.Endpoint(1), net.Endpoint(2)
	xferOnce(t, clk, src, dst, make([]byte, 8))
	rep := mon.Report("")
	if len(rep.Links) == 0 {
		t.Fatal("no links observed")
	}
	for _, l := range rep.Links {
		if l.RouterName == "" {
			t.Fatalf("link %d/%d has no router name", l.Router, l.Port)
		}
	}
}
