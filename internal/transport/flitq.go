package transport

import "fmt"

// This file is the struct-of-arrays flit store behind the fabric hot
// path. The exported Flit struct remains the package's view type — NIU
// adapters, obs probes, phys.Link and the tests all keep seeing flits —
// but inside the fabric a flit is a *slot index* into parallel arrays:
// one array per field plus an inline payload-byte block, so moving a
// flit across a link is a handful of array stores with no pointers, no
// GC write barriers, and no per-flit allocation. Payload bytes travel
// by value (stride bytes per slot) instead of aliasing a heap-allocated
// wire buffer, which is what lets a warmed-up fabric run without
// touching the heap at all.

// Flit slot flag bits (the SoA form of Flit.Head/Flit.Tail).
const (
	slotHead uint8 = 1 << 0
	slotTail uint8 = 1 << 1
)

// flitSlots is parallel flit storage: field i of flit j lives at
// arrays[j], and slot j's payload bytes at data[j*stride:]. Headers are
// only meaningful on slots flagged slotHead, mirroring the Flit
// contract ("Hdr valid when Head").
type flitSlots struct {
	pktID []uint64
	flags []uint8
	vc    []uint8
	hops  []uint8
	dlen  []uint16
	hdr   []Header
	data  []byte
}

func newFlitSlots(n, stride int) flitSlots {
	return flitSlots{
		pktID: make([]uint64, n),
		flags: make([]uint8, n),
		vc:    make([]uint8, n),
		hops:  make([]uint8, n),
		dlen:  make([]uint16, n),
		hdr:   make([]Header, n),
		data:  make([]byte, n*stride),
	}
}

// copySlot copies slot j of src into slot i of dst. Headers travel only
// on head flits; payload bytes are copied by value.
func (dst *flitSlots) copySlot(i int, src *flitSlots, j, stride int) {
	dst.pktID[i] = src.pktID[j]
	fl := src.flags[j]
	dst.flags[i] = fl
	dst.vc[i] = src.vc[j]
	dst.hops[i] = src.hops[j]
	n := src.dlen[j]
	dst.dlen[i] = n
	copy(dst.data[i*stride:i*stride+int(n)], src.data[j*stride:j*stride+int(n)])
	if fl&slotHead != 0 {
		dst.hdr[i] = src.hdr[j]
	}
}

// view materializes slot i as the exported Flit type. The Data slice
// aliases the slot's storage: it is valid until the slot is popped or
// overwritten, which is exactly the lifetime the probe hooks and tests
// need. Body flits get a zero Hdr, matching the AoS behaviour.
func (s *flitSlots) view(i, stride int) Flit {
	f := Flit{
		PktID: s.pktID[i],
		VC:    s.vc[i],
		Head:  s.flags[i]&slotHead != 0,
		Tail:  s.flags[i]&slotTail != 0,
		Hops:  s.hops[i],
		Data:  s.data[i*stride : i*stride+int(s.dlen[i])],
	}
	if f.Head {
		f.Hdr = s.hdr[i]
	}
	return f
}

// setFromFlit writes the exported Flit f into slot i (the inverse of
// view, for the compat push path).
func (s *flitSlots) setFromFlit(i int, f Flit, stride int) {
	s.pktID[i] = f.PktID
	var fl uint8
	if f.Head {
		fl |= slotHead
	}
	if f.Tail {
		fl |= slotTail
	}
	s.flags[i] = fl
	s.vc[i] = f.VC
	s.hops[i] = f.Hops
	s.dlen[i] = uint16(len(f.Data))
	copy(s.data[i*stride:], f.Data)
	if f.Head {
		s.hdr[i] = f.Hdr
	}
}

// flitQ is a flit FIFO over flitSlots with sim.Pipe register semantics:
// values staged during a cycle become consumable at the next cycle, and
// a slot freed by a pop cannot be refilled until the next cycle
// (one-cycle credit turnaround via the startLen snapshot). It is not a
// clocked component — the owning Network commits every lane in one
// batch pass per clock edge, replacing the per-pipe virtual Update
// calls of the AoS design.
//
// Committed slots live in a power-of-two ring [head, head+clen); slots
// staged this cycle are written in place directly behind them, at
// [head+clen, head+clen+pend). That position is stable within the
// cycle — a pop moves head forward and clen down by one, leaving
// head+clen fixed — so commit publishes staged slots by just extending
// clen: no second copy, and an idle lane's commit is two integer
// stores. Consumers never index past clen, which is what keeps staged
// data invisible until the edge. A bounded queue (router lanes,
// ejection buffers) refuses pushes past capacity, and capacity never
// exceeds the ring size, so in-place staging cannot overrun; an
// unbounded one (endpoint send queues) grows instead.
type flitQ struct {
	name      string
	capacity  int // credit limit; also the logical depth reported to CanPush
	stride    int // payload bytes per slot (the fabric's flit width)
	unbounded bool

	ring flitSlots
	mask int // len(ring arrays) - 1, power of two
	head int // ring index of the oldest committed slot
	clen int // committed slot count
	pend int // staged slot count, occupying [head+clen, head+clen+pend)

	// startLen is the committed length at the start of the cycle, before
	// any pops: push credit checks use it so results cannot depend on
	// Eval order within a cycle (same rule as sim.Pipe).
	startLen int
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newFlitQ creates a bounded flit queue (router input lanes, ejection
// buffers).
func newFlitQ(name string, capacity, stride int) *flitQ {
	if capacity <= 0 {
		panic(fmt.Sprintf("transport: flit queue %q: capacity must be positive, got %d", name, capacity))
	}
	if stride <= 0 {
		panic(fmt.Sprintf("transport: flit queue %q: stride must be positive, got %d", name, stride))
	}
	n := nextPow2(capacity)
	return &flitQ{
		name:     name,
		capacity: capacity,
		stride:   stride,
		ring:     newFlitSlots(n, stride),
		mask:     n - 1,
	}
}

// newFlitDeq creates an unbounded flit queue (endpoint send queues,
// which are bounded in packets by MaxPendingPkts, not in flits).
func newFlitDeq(name string, stride int) *flitQ {
	q := newFlitQ(name, 8, stride)
	q.unbounded = true
	return q
}

// canPush reports whether n more slots may be staged this cycle.
func (q *flitQ) canPush(n int) bool {
	return q.unbounded || q.startLen+q.pend+n <= q.capacity
}

// len returns the number of committed (consumable) slots.
func (q *flitQ) len() int { return q.clen }

// occupancy returns committed plus staged slots (total storage in use).
func (q *flitQ) occupancy() int { return q.clen + q.pend }

// slot returns the ring index of the i-th oldest committed slot.
func (q *flitQ) slot(i int) int { return (q.head + i) & q.mask }

// stagePush reserves the next staging slot and returns its ring index;
// the caller fills the parallel arrays directly via q.ring. Bounded
// queues must have checked canPush first.
func (q *flitQ) stagePush() int {
	if q.clen+q.pend > q.mask {
		q.growRing(q.clen + q.pend + 1)
	}
	i := (q.head + q.clen + q.pend) & q.mask
	q.pend++
	return i
}

// pushFlit stages the exported Flit f — the compat path for code that
// holds a Flit value rather than a source slot.
func (q *flitQ) pushFlit(f Flit) bool {
	if !q.canPush(1) {
		return false
	}
	if len(f.Data) > q.stride {
		panic(fmt.Sprintf("transport: flit queue %q: %dB flit exceeds %dB stride", q.name, len(f.Data), q.stride))
	}
	q.ring.setFromFlit(q.stagePush(), f, q.stride)
	return true
}

// pop discards the oldest committed slot. Callers read the slot's
// fields (via q.slot(0) indexing or peek) before popping. No zeroing is
// needed: slots hold no references.
func (q *flitQ) pop() {
	q.head = (q.head + 1) & q.mask
	q.clen--
}

// peek returns the oldest committed slot as a Flit view.
func (q *flitQ) peek() (Flit, bool) {
	if q.clen == 0 {
		return Flit{}, false
	}
	return q.ring.view(q.head, q.stride), true
}

// Peek is the exported spelling of peek, for tests that sample a
// buffer head (the AoS code exposed a sim.Pipe here).
func (q *flitQ) Peek() (Flit, bool) { return q.peek() }

// Len is the exported spelling of len, for occupancy sampling.
func (q *flitQ) Len() int { return q.clen }

// commit publishes this cycle's staged slots (already written in place
// behind the committed window) and refreshes the credit snapshot. The
// Network calls it for every lane on every edge; the cost is a few
// integer stores whether the lane moved flits or sat idle.
func (q *flitQ) commit() {
	q.clen += q.pend
	q.pend = 0
	q.startLen = q.clen
}

// growRing doubles the ring until need slots fit (unbounded queues
// only; bounded queues can never stage past capacity <= ring size),
// linearizing the committed and staged window to the front.
func (q *flitQ) growRing(need int) {
	n := q.mask + 1
	for n < need {
		n *= 2
	}
	old := q.ring
	oldMask, oldHead := q.mask, q.head
	q.ring = newFlitSlots(n, q.stride)
	for i := 0; i < q.clen+q.pend; i++ {
		q.ring.copySlot(i, &old, (oldHead+i)&oldMask, q.stride)
	}
	q.mask = n - 1
	q.head = 0
}
