package transport

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gonoc/internal/noctypes"
	"gonoc/internal/sim"
)

// The loose engine's claim is precise: at zero contention the analytic
// model reproduces the cycle-accurate fabric's externally visible
// behaviour *exactly* — same TransitRecord cycles, same delivery order,
// same payload bytes, same send-window backpressure. These tests drive
// identical workloads through a cycle-accurate fabric and a hybrid (or
// loose) one and require byte-equal observations.

// transitObs is the comparable projection of one packet journey.
type transitObs struct {
	Src, Dst noctypes.NodeID
	Tag      noctypes.Tag
	Queued   int64
	Inject   int64
	Eject    int64
	Hops     int
}

// deliveryObs is one packet as the consumer saw it: arrival cycle,
// identity, and a payload digest (checks the loose path's copy-on-send).
type deliveryObs struct {
	At       int64
	Node     noctypes.NodeID
	Src      noctypes.NodeID
	Tag      noctypes.Tag
	PayLen   int
	PaySum   uint64
	Priority noctypes.Priority
}

// fidelityBurst is one same-pair packet train; bursts run sequentially,
// each starting only after the fabric drains — the zero-contention
// regime where the analytic model must be exact.
type fidelityBurst struct {
	src, dst noctypes.NodeID
	count    int
	payload  []int // payload bytes per packet
}

// tickComp adapts a function into a clocked component so test drivers
// send from Eval context, like traffic sources and NIUs do.
type tickComp struct{ fn func(cycle int64) }

func (t tickComp) Eval(cycle int64)   { t.fn(cycle) }
func (t tickComp) Update(cycle int64) {}

func buildFidelityNet(topo string, cfg NetConfig, n int) (*sim.Clock, *Network) {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
	nodes := make([]noctypes.NodeID, n)
	for i := range nodes {
		nodes[i] = noctypes.NodeID(i + 1)
	}
	switch topo {
	case "mesh", "torus":
		w := int(math.Ceil(math.Sqrt(float64(n))))
		h := (n + w - 1) / w
		spec := MeshSpec{W: w, H: h, Nodes: map[noctypes.NodeID]Coord{}}
		for i, nd := range nodes {
			spec.Nodes[nd] = Coord{X: i % w, Y: i / w}
		}
		if topo == "torus" {
			return clk, NewTorus(clk, cfg, spec)
		}
		return clk, NewMesh(clk, cfg, spec)
	case "ring":
		return clk, NewRing(clk, cfg, nodes)
	case "tree":
		return clk, NewTree(clk, cfg, 3, nodes)
	default:
		return clk, NewCrossbar(clk, cfg, nodes)
	}
}

// runFidelitySchedule drives the bursts through one fabric and returns
// every observation the outside world could make.
func runFidelitySchedule(t *testing.T, topo string, cfg NetConfig, bursts []fidelityBurst) ([]transitObs, []deliveryObs) {
	t.Helper()
	maxNode := 0
	for _, b := range bursts {
		if int(b.src) > maxNode {
			maxNode = int(b.src)
		}
		if int(b.dst) > maxNode {
			maxNode = int(b.dst)
		}
	}
	clk, net := buildFidelityNet(topo, cfg, maxNode)

	var transits []transitObs
	var delivered []deliveryObs
	net.OnTransit = func(rec TransitRecord) {
		transits = append(transits, transitObs{
			Src: rec.Pkt.Src, Dst: rec.Pkt.Dst, Tag: rec.Pkt.Tag,
			Queued: rec.QueuedCycle, Inject: rec.InjectCycle,
			Eject: rec.EjectCycle, Hops: rec.Hops,
		})
	}

	bi, sent := 0, 0
	done := false
	var scratch []*Packet
	clk.Register(tickComp{fn: func(cycle int64) {
		// Consume first: every endpoint drains its receive queue each
		// cycle, the regime traffic sources run in.
		for _, nd := range net.Nodes() {
			ep := net.Endpoint(nd)
			scratch = ep.RecvAll(scratch[:0])
			for _, p := range scratch {
				var sum uint64
				for _, by := range p.Payload {
					sum = sum*131 + uint64(by)
				}
				delivered = append(delivered, deliveryObs{
					At: cycle, Node: nd, Src: p.Src, Tag: p.Tag,
					PayLen: len(p.Payload), PaySum: sum, Priority: p.Priority,
				})
				ep.Recycle(p)
			}
		}
		if done {
			return
		}
		b := bursts[bi]
		for sent < b.count {
			p := net.NewPacket(b.payload[sent])
			p.Kind = KindReq
			p.Src = b.src
			p.Dst = b.dst
			p.Tag = noctypes.Tag(sent)
			p.Priority = noctypes.PrioDefault
			for i := range p.Payload {
				p.Payload[i] = byte(int(b.src)*7 + sent*13 + i)
			}
			if !net.Endpoint(b.src).TrySend(p) {
				net.Recycle(p)
				return // backpressure: retry next cycle
			}
			net.Recycle(p)
			sent++
		}
		if net.Drained() {
			bi++
			sent = 0
			if bi == len(bursts) {
				done = true
			}
		}
	}})

	for c := 0; c < 200000; c++ {
		clk.RunCycles(1)
		if done && net.Drained() {
			clk.RunCycles(4) // let the last receive-queue commits land
			return transits, delivered
		}
	}
	t.Fatalf("schedule incomplete after 200000 cycles (burst %d/%d, in flight %d)",
		bi, len(bursts), net.InFlight())
	return nil, nil
}

// compareFidelity runs the same schedule cycle-accurately and at the
// given fidelity, and requires identical observations.
func compareFidelity(t *testing.T, topo string, cfg NetConfig, fid Fidelity, bursts []fidelityBurst) {
	t.Helper()
	cfgCycle := cfg
	cfgCycle.Fidelity = FidelityCycle
	cfgLoose := cfg
	cfgLoose.Fidelity = fid

	wantT, wantD := runFidelitySchedule(t, topo, cfgCycle, bursts)
	gotT, gotD := runFidelitySchedule(t, topo, cfgLoose, bursts)

	if len(gotT) != len(wantT) {
		t.Fatalf("%s/%v: %d transits, cycle-accurate %d", topo, fid, len(gotT), len(wantT))
	}
	for i := range wantT {
		if gotT[i] != wantT[i] {
			t.Fatalf("%s/%v: transit %d = %+v, cycle-accurate %+v", topo, fid, i, gotT[i], wantT[i])
		}
	}
	if len(gotD) != len(wantD) {
		t.Fatalf("%s/%v: %d deliveries, cycle-accurate %d", topo, fid, len(gotD), len(wantD))
	}
	for i := range wantD {
		if gotD[i] != wantD[i] {
			t.Fatalf("%s/%v: delivery %d = %+v, cycle-accurate %+v", topo, fid, i, gotD[i], wantD[i])
		}
	}
}

func seqBursts(rng *rand.Rand, n int, count int, maxPay int) []fidelityBurst {
	var bursts []fidelityBurst
	for len(bursts) < count {
		src := noctypes.NodeID(rng.Intn(n) + 1)
		dst := noctypes.NodeID(rng.Intn(n) + 1)
		if src == dst {
			continue
		}
		b := fidelityBurst{src: src, dst: dst, count: rng.Intn(4) + 1}
		for i := 0; i < b.count; i++ {
			b.payload = append(b.payload, rng.Intn(maxPay+1))
		}
		bursts = append(bursts, b)
	}
	return bursts
}

func TestLooseExactUncontended(t *testing.T) {
	topos := []string{"crossbar", "mesh", "torus", "ring", "tree"}
	// BufDepth: 16 holds the largest packet (10 flits) whole — required
	// by SAF and by cut-through admission on ring/torus. SAF trains are
	// exact only while two consecutive packets fit in one lane
	// (no buffer squeeze), hence 20 = 2x the largest packet there.
	modes := []NetConfig{
		{BufDepth: 16},
		{Mode: StoreAndForward, BufDepth: 20},
	}
	for _, topo := range topos {
		for mi, cfg := range modes {
			for _, fid := range []Fidelity{FidelityHybrid, FidelityLoose} {
				t.Run(fmt.Sprintf("%s/m%d/%v", topo, mi, fid), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(42 + mi)))
					bursts := seqBursts(rng, 9, 12, 64)
					compareFidelity(t, topo, cfg, fid, bursts)
				})
			}
		}
	}
}

// FuzzLooseLatencyExact is the satellite property test: for random
// small topologies, switching modes, flit widths, and same-pair packet
// trains, hybrid-mode zero-contention runs must produce exactly the
// cycle-accurate latency — the analytic model is exact when queueing
// is zero.
func FuzzLooseLatencyExact(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(6), uint8(1), int64(1))
	f.Add(uint8(1), uint8(1), uint8(9), uint8(0), int64(2))
	f.Add(uint8(2), uint8(0), uint8(8), uint8(2), int64(3))
	f.Add(uint8(3), uint8(1), uint8(5), uint8(1), int64(4))
	f.Add(uint8(4), uint8(0), uint8(12), uint8(0), int64(5))
	f.Fuzz(func(t *testing.T, topoSel, modeSel, nodeSel, flitSel uint8, seed int64) {
		topo := []string{"crossbar", "mesh", "torus", "ring", "tree"}[int(topoSel)%5]
		n := 4 + int(nodeSel)%10 // 4..13 endpoints
		cfg := NetConfig{
			FlitBytes: []int{4, 8, 16}[int(flitSel)%3],
		}
		maxPay := 48
		if modeSel%2 == 1 {
			cfg.Mode = StoreAndForward
		}
		// Whole-packet buffering (SAF, and cut-through on ring/torus)
		// needs BufDepth >= the largest packet's flit count; SAF trains
		// additionally need room for two consecutive packets per lane
		// (no buffer squeeze) for the model to stay exact.
		fb := cfg.FlitBytes
		maxNf := (HeaderBytes + maxPay + fb - 1) / fb
		cfg.BufDepth = maxNf + 2
		if cfg.Mode == StoreAndForward {
			cfg.BufDepth = 2*maxNf + 2
		}
		rng := rand.New(rand.NewSource(seed))
		bursts := seqBursts(rng, n, 8, maxPay)
		compareFidelity(t, topo, cfg, FidelityHybrid, bursts)
	})
}

// TestFidelityCycleInert pins the knob's off position: a cycle-accurate
// fabric carries no engine and reports zero fidelity activity, even
// when the loose tuning fields are set.
func TestFidelityCycleInert(t *testing.T) {
	tn := newXbar(NetConfig{Fidelity: FidelityCycle, LooseThreshold: 0.9, LooseWindow: 7}, 1, 2)
	if tn.net.loose != nil {
		t.Fatal("cycle-accurate fabric built a loose engine")
	}
	tn.net.Endpoint(1).TrySend(pkt(1, 2, "plain"))
	tn.runUntilDrained(t, 100)
	if s := tn.net.FidelityStats(); s != (FidelityStats{}) {
		t.Fatalf("cycle-accurate fabric reported fidelity stats %+v", s)
	}
	if _, ok := tn.net.Endpoint(2).Recv(); !ok {
		t.Fatal("packet lost")
	}
}

// TestHybridFallbackUnderLoad drives a hotspot well past the
// utilization threshold and checks that hybrid mode actually falls
// back (packets ride the flit path) while conserving every packet.
func TestHybridFallbackUnderLoad(t *testing.T) {
	cfg := NetConfig{
		Fidelity:       FidelityHybrid,
		LooseThreshold: 0.05,
		LooseWindow:    32,
	}
	clk, net := buildFidelityNet("crossbar", cfg, 5)
	hot := noctypes.NodeID(1)
	sent, got := 0, 0
	clk.Register(tickComp{fn: func(cycle int64) {
		for _, nd := range net.Nodes() {
			ep := net.Endpoint(nd)
			for {
				p, ok := ep.Recv()
				if !ok {
					break
				}
				got++
				ep.Recycle(p)
			}
			if nd == hot || cycle > 4000 {
				continue
			}
			p := net.NewPacket(32)
			p.Kind = KindReq
			p.Src = nd
			p.Dst = hot
			if ep.TrySend(p) {
				sent++
			}
			net.Recycle(p)
		}
	}})
	for c := 0; c < 20000; c++ {
		clk.RunCycles(1)
		if c > 4100 && net.Drained() {
			break
		}
	}
	clk.RunCycles(4)
	// Drain the last committed deliveries.
	for _, nd := range net.Nodes() {
		ep := net.Endpoint(nd)
		for {
			p, ok := ep.Recv()
			if !ok {
				break
			}
			got++
			ep.Recycle(p)
		}
	}
	if !net.Drained() {
		t.Fatalf("fabric not drained (in flight %d)", net.InFlight())
	}
	if got != sent {
		t.Fatalf("conservation: sent %d, delivered %d", sent, got)
	}
	s := net.FidelityStats()
	if s.FallbackPkts == 0 {
		t.Fatalf("no hybrid fallback under 4x-threshold hotspot load (stats %+v)", s)
	}
	if s.AnalyticPkts == 0 {
		t.Fatalf("no analytic packets at all (stats %+v)", s)
	}
}

// TestLooseDeterminism: two identical hybrid runs observe identical
// histories — the approximate mode is still seed-deterministic.
func TestLooseDeterminism(t *testing.T) {
	cfg := NetConfig{Fidelity: FidelityHybrid, LooseThreshold: 0.1, LooseWindow: 64}
	rng1 := rand.New(rand.NewSource(7))
	b1 := seqBursts(rng1, 8, 10, 40)
	t1, d1 := runFidelitySchedule(t, "mesh", cfg, b1)
	rng2 := rand.New(rand.NewSource(7))
	b2 := seqBursts(rng2, 8, 10, 40)
	t2, d2 := runFidelitySchedule(t, "mesh", cfg, b2)
	if len(t1) != len(t2) || len(d1) != len(d2) {
		t.Fatalf("replay diverged: %d/%d transits, %d/%d deliveries", len(t1), len(t2), len(d1), len(d2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("transit %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delivery %d: %+v vs %+v", i, d1[i], d2[i])
		}
	}
}

func TestParseFidelity(t *testing.T) {
	cases := []struct {
		in   string
		want Fidelity
		ok   bool
	}{
		{"", FidelityCycle, true},
		{"cycle", FidelityCycle, true},
		{"Hybrid", FidelityHybrid, true},
		{" loose ", FidelityLoose, true},
		{"fast", 0, false},
		{"approximate", 0, false},
	}
	for _, c := range cases {
		got, err := ParseFidelity(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Fatalf("ParseFidelity(%q) = %v, %v; want %v ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, f := range []Fidelity{FidelityCycle, FidelityHybrid, FidelityLoose} {
		back, err := ParseFidelity(f.String())
		if err != nil || back != f {
			t.Fatalf("round trip %v -> %q -> %v, %v", f, f.String(), back, err)
		}
	}
}

// TestLockedFabricStaysCycleAccurate: legacy-lock fabrics carry switch
// state the model cannot see, so even loose fidelity routes them
// through the flit path.
func TestLockedFabricStaysCycleAccurate(t *testing.T) {
	cfg := NetConfig{Fidelity: FidelityLoose, LegacyLock: true}
	clk, net := buildFidelityNet("crossbar", cfg, 3)
	sentOK := false
	clk.Register(tickComp{fn: func(cycle int64) {
		if sentOK {
			return
		}
		p := net.NewPacket(8)
		p.Kind = KindReq
		p.Src = 1
		p.Dst = 2
		sentOK = net.Endpoint(1).TrySend(p)
		net.Recycle(p)
	}})
	clk.RunCycles(50)
	if !sentOK {
		t.Fatal("send refused")
	}
	if s := net.FidelityStats(); s.AnalyticPkts != 0 {
		t.Fatalf("legacy-lock fabric priced a packet analytically: %+v", s)
	}
	if _, ok := net.Endpoint(2).Recv(); !ok {
		t.Fatal("packet lost")
	}
}
