//go:build race

package transport

// raceEnabled reports whether this binary was built with -race; tests
// that assert allocation counts skip under it (instrumentation
// allocates).
const raceEnabled = true
