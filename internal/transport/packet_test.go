package transport

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"gonoc/internal/noctypes"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Kind: KindRsp, Dst: 3, Src: 9, Tag: 12,
		Priority: noctypes.PrioHigh, Locked: true, Unlock: true,
		User: 0xA5, PayloadLen: 1234,
	}
	got, err := DecodeHeader(EncodeHeader(&h))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", h, got)
	}
}

func TestHeaderDecodeErrors(t *testing.T) {
	if _, err := DecodeHeader([]byte{1, 2, 3}); err == nil {
		t.Error("short header decoded")
	}
	bad := EncodeHeader(&Header{})
	bad[0] = 0x00
	if _, err := DecodeHeader(bad); err == nil {
		t.Error("bad magic decoded")
	}
}

func TestPacketizeSingleFlit(t *testing.T) {
	p := &Packet{Header: Header{Dst: 1, Src: 2}, ID: 7}
	flits := Packetize(p, 16) // header-only packet fits one 16B flit
	if len(flits) != 1 || !flits[0].Head || !flits[0].Tail {
		t.Fatalf("flits = %v", flits)
	}
	if flits[0].Hdr.Dst != 1 {
		t.Fatal("head flit missing header copy")
	}
}

func TestPacketizeMultiFlit(t *testing.T) {
	p := &Packet{Header: Header{Dst: 1, Src: 2}, Payload: make([]byte, 20), ID: 7}
	flits := Packetize(p, 8) // 36 wire bytes -> 5 flits
	if len(flits) != 5 {
		t.Fatalf("got %d flits, want 5", len(flits))
	}
	if !flits[0].Head || flits[0].Tail {
		t.Fatal("first flit flags wrong")
	}
	for _, f := range flits[1:4] {
		if f.Head || f.Tail {
			t.Fatal("body flit flags wrong")
		}
	}
	if flits[4].Head || !flits[4].Tail {
		t.Fatal("tail flit flags wrong")
	}
	total := 0
	for _, f := range flits {
		total += len(f.Data)
	}
	if total != 36 {
		t.Fatalf("flit bytes = %d, want 36", total)
	}
}

func TestPacketizeVCAssignment(t *testing.T) {
	normal := Packetize(&Packet{Header: Header{Dst: 1, Src: 2}}, 8)
	if normal[0].VC != VCNormal {
		t.Fatal("normal packet not on VCNormal")
	}
	locked := Packetize(&Packet{Header: Header{Dst: 1, Src: 2, Locked: true}}, 8)
	if locked[0].VC != VCLocked {
		t.Fatal("locked packet not on VCLocked")
	}
}

func TestReassembleRoundTrip(t *testing.T) {
	payload := []byte("the fabric is transaction-unaware")
	p := &Packet{
		Header:  Header{Kind: KindReq, Dst: 4, Src: 5, Tag: 6, Priority: noctypes.PrioUrgent, User: 0x01},
		Payload: payload,
		ID:      99,
	}
	var r Reassembler
	var out *Packet
	for _, f := range Packetize(p, 8) {
		got, err := r.Feed(f)
		if err != nil {
			t.Fatalf("feed: %v", err)
		}
		if got != nil {
			out = got
		}
	}
	if out == nil {
		t.Fatal("no packet reassembled")
	}
	if out.Dst != 4 || out.Src != 5 || out.Tag != 6 || out.User != 0x01 {
		t.Fatalf("header mismatch: %+v", out.Header)
	}
	if !bytes.Equal(out.Payload, payload) {
		t.Fatalf("payload mismatch: %q", out.Payload)
	}
	if out.ID != 99 {
		t.Fatalf("ID = %d", out.ID)
	}
}

func TestReassembleInterleaveDetected(t *testing.T) {
	p1 := Packetize(&Packet{Header: Header{Dst: 1, Src: 2}, Payload: make([]byte, 20), ID: 1}, 8)
	p2 := Packetize(&Packet{Header: Header{Dst: 1, Src: 3}, Payload: make([]byte, 20), ID: 2}, 8)
	var r Reassembler
	if _, err := r.Feed(p1[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Feed(p2[0]); err == nil {
		t.Fatal("interleaved head not detected")
	}
	var r2 Reassembler
	if _, err := r2.Feed(p1[1]); err == nil {
		t.Fatal("body-without-head not detected")
	}
}

func TestFlitCount(t *testing.T) {
	cases := []struct{ wire, flit, want int }{
		{16, 8, 2}, {17, 8, 3}, {8, 8, 1}, {1, 8, 1}, {100, 16, 7},
	}
	for _, c := range cases {
		if got := FlitCount(c.wire, c.flit); got != c.want {
			t.Errorf("FlitCount(%d,%d) = %d, want %d", c.wire, c.flit, got, c.want)
		}
	}
}

func TestFlitString(t *testing.T) {
	f := Flit{Head: true, Tail: true}
	if f.String() == "" {
		t.Fatal("empty String")
	}
}

// Property: packetize/reassemble is the identity for any payload and any
// flit width.
func TestQuickPacketizeRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		widths := []int{1, 2, 4, 8, 16, 32}
		p := &Packet{
			Header: Header{
				Kind:     Kind(rng.Intn(2)),
				Dst:      noctypes.NodeID(rng.Intn(100)),
				Src:      noctypes.NodeID(rng.Intn(100)),
				Tag:      noctypes.Tag(rng.Intn(16)),
				Priority: noctypes.Priority(rng.Intn(4)),
				Locked:   rng.Intn(2) == 0,
				User:     uint8(rng.Intn(256)),
			},
			Payload: make([]byte, rng.Intn(200)),
			ID:      rng.Uint64(),
		}
		p.Unlock = p.Locked && rng.Intn(2) == 0
		rng.Read(p.Payload)
		var r Reassembler
		var out *Packet
		for _, f := range Packetize(p, widths[rng.Intn(len(widths))]) {
			got, err := r.Feed(f)
			if err != nil {
				return false
			}
			if got != nil {
				out = got
			}
		}
		if out == nil {
			return false
		}
		return out.Header == p.Header && bytes.Equal(out.Payload, p.Payload) && out.ID == p.ID
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
