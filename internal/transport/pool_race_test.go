package transport

import (
	"sync"
	"testing"

	"gonoc/internal/noctypes"
	"gonoc/internal/sim"
)

// TestPooledFreeListsRaceSmoke drives several independent fabrics
// concurrently through a pooled steady state — TrySend from reused
// packets, RecvAll, Recycle — long enough for every free list to cycle
// descriptors many times. Each Network's pools must be entirely
// network-local (no hidden globals, no sync.Pool sharing), which is
// exactly what the race detector checks when CI runs this under -race;
// without -race it still smokes the pooled paths under the campaign
// runner's real concurrency pattern (one isolated simulation per
// goroutine).
func TestPooledFreeListsRaceSmoke(t *testing.T) {
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			k := sim.NewKernel()
			clk := sim.NewClock(k, "race", sim.Nanosecond, 0)
			nodes := []noctypes.NodeID{1, 2, 3, 4}
			net := NewMesh(clk, NetConfig{BufDepth: 8}, MeshSpec{
				W: 2, H: 2,
				Nodes: map[noctypes.NodeID]Coord{
					1: {0, 0}, 2: {1, 0}, 3: {0, 1}, 4: {1, 1},
				},
			})
			eps := make([]*Endpoint, len(nodes))
			pkts := make([]*Packet, len(nodes))
			for i, id := range nodes {
				eps[i] = net.Endpoint(id)
				pkts[i] = &Packet{Header: Header{Kind: KindReq, Src: id}, Payload: make([]byte, 24)}
			}
			rng := uint64(seed)*0x9E3779B9 + 1
			var rxBuf []*Packet
			received := 0
			for cycle := 0; cycle < 3000; cycle++ {
				for i, ep := range eps {
					if !ep.CanSend() {
						continue
					}
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					d := nodes[rng%uint64(len(nodes))]
					if d == ep.ID() {
						continue
					}
					pkts[i].Dst = d
					ep.TrySend(pkts[i])
				}
				clk.RunCycles(1)
				for _, ep := range eps {
					rxBuf = ep.RecvAll(rxBuf[:0])
					for _, rx := range rxBuf {
						received++
						net.Recycle(rx)
					}
				}
			}
			if received == 0 {
				errs <- errNoTraffic
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errNoTraffic = errFixed("pooled steady state moved no packets")

type errFixed string

func (e errFixed) Error() string { return string(e) }
