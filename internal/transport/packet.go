package transport

import (
	"encoding/binary"
	"fmt"

	"gonoc/internal/noctypes"
)

// Kind distinguishes request packets (routed by SlvAddr) from response
// packets (routed by MstAddr). The fabric treats both identically; the
// kind exists so endpoints can demultiplex.
type Kind uint8

// Packet kinds.
const (
	KindReq Kind = iota
	KindRsp
)

// String renders a Kind.
func (k Kind) String() string {
	if k == KindReq {
		return "REQ"
	}
	return "RSP"
}

// Header is the transport-visible part of a packet. Everything a switch
// ever inspects lives here.
type Header struct {
	Kind       Kind
	Dst        noctypes.NodeID // the paper's SlvAddr (or MstAddr for responses)
	Src        noctypes.NodeID // the paper's MstAddr (or SlvAddr for responses)
	Tag        noctypes.Tag    // the paper's Tag: per-(Src,Tag) order preserved
	Priority   noctypes.Priority
	Locked     bool  // member of a legacy lock sequence (transport-visible!)
	Unlock     bool  // final member: releases path reservations
	User       uint8 // NoC service bits; carried, never interpreted
	PayloadLen uint32
}

// Packet is one transport-layer packet: a header plus opaque payload.
type Packet struct {
	Header
	Payload []byte

	// ID is a simulator-assigned unique identifier used for flit
	// reassembly and tracing; it is not part of the wire format.
	ID uint64
}

// Wire format constants.
const (
	HeaderBytes = 16
	hdrMagic    = 0xC3
)

// Header flag bits in byte 1.
const (
	hfKindRsp = 1 << 0
	hfLocked  = 1 << 1
	hfUnlock  = 1 << 2
)

// EncodeHeader serializes the header into 16 wire bytes.
func EncodeHeader(h *Header) []byte {
	return AppendHeader(make([]byte, 0, HeaderBytes), h)
}

// AppendHeader serializes the header onto dst and returns the extended
// slice — the allocation-free form of EncodeHeader for hot paths that
// already own a buffer.
func AppendHeader(dst []byte, h *Header) []byte {
	var buf [HeaderBytes]byte
	buf[0] = hdrMagic
	var fl byte
	if h.Kind == KindRsp {
		fl |= hfKindRsp
	}
	if h.Locked {
		fl |= hfLocked
	}
	if h.Unlock {
		fl |= hfUnlock
	}
	buf[1] = fl
	binary.LittleEndian.PutUint16(buf[2:4], uint16(h.Dst))
	binary.LittleEndian.PutUint16(buf[4:6], uint16(h.Src))
	binary.LittleEndian.PutUint16(buf[6:8], uint16(h.Tag))
	buf[8] = uint8(h.Priority)
	buf[9] = h.User
	binary.LittleEndian.PutUint32(buf[10:14], h.PayloadLen)
	return append(dst, buf[:]...)
}

// DecodeHeader parses 16 wire bytes into a header.
func DecodeHeader(buf []byte) (Header, error) {
	var h Header
	if len(buf) < HeaderBytes {
		return h, fmt.Errorf("transport: header too short (%d bytes)", len(buf))
	}
	if buf[0] != hdrMagic {
		return h, fmt.Errorf("transport: bad header magic %#x", buf[0])
	}
	fl := buf[1]
	if fl&hfKindRsp != 0 {
		h.Kind = KindRsp
	}
	h.Locked = fl&hfLocked != 0
	h.Unlock = fl&hfUnlock != 0
	h.Dst = noctypes.NodeID(binary.LittleEndian.Uint16(buf[2:4]))
	h.Src = noctypes.NodeID(binary.LittleEndian.Uint16(buf[4:6]))
	h.Tag = noctypes.Tag(binary.LittleEndian.Uint16(buf[6:8]))
	h.Priority = noctypes.Priority(buf[8])
	h.User = buf[9]
	h.PayloadLen = binary.LittleEndian.Uint32(buf[10:14])
	return h, nil
}

// WireBytes returns the packet's total wire size.
func (p *Packet) WireBytes() int { return HeaderBytes + len(p.Payload) }

// String renders a compact description.
func (p *Packet) String() string {
	return fmt.Sprintf("%s pkt#%d %s->%s %s prio=%s %dB",
		p.Kind, p.ID, p.Src, p.Dst, p.Tag, p.Priority, len(p.Payload))
}
