package transport

import (
	"bytes"
	"fmt"
	"testing"

	"gonoc/internal/noctypes"
	"gonoc/internal/sim"
)

// testNet bundles a kernel, clock and network for transport tests.
type testNet struct {
	k   *sim.Kernel
	clk *sim.Clock
	net *Network
}

func newXbar(cfg NetConfig, nodes ...noctypes.NodeID) *testNet {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
	return &testNet{k: k, clk: clk, net: NewCrossbar(clk, cfg, nodes)}
}

func (tn *testNet) runUntilDrained(t *testing.T, maxCycles int64) {
	t.Helper()
	start := tn.clk.Cycle()
	for tn.clk.Cycle()-start < maxCycles {
		if tn.net.Drained() {
			return
		}
		tn.clk.RunCycles(1)
	}
	t.Fatalf("network not drained after %d cycles (in flight: %d)", maxCycles, tn.net.InFlight())
}

func pkt(src, dst noctypes.NodeID, payload string) *Packet {
	return &Packet{
		Header:  Header{Kind: KindReq, Dst: dst, Src: src, Priority: noctypes.PrioDefault},
		Payload: []byte(payload),
	}
}

func TestCrossbarDelivery(t *testing.T) {
	tn := newXbar(NetConfig{}, 1, 2)
	a, b := tn.net.Endpoint(1), tn.net.Endpoint(2)
	if !a.TrySend(pkt(1, 2, "hello fabric")) {
		t.Fatal("TrySend refused on idle network")
	}
	tn.runUntilDrained(t, 100)
	got, ok := b.Recv()
	if !ok {
		t.Fatal("nothing received")
	}
	if string(got.Payload) != "hello fabric" || got.Src != 1 {
		t.Fatalf("received %v payload %q", got, got.Payload)
	}
	if _, ok := a.Recv(); ok {
		t.Fatal("sender received its own packet")
	}
}

func TestCrossbarBidirectional(t *testing.T) {
	tn := newXbar(NetConfig{}, 1, 2)
	tn.net.Endpoint(1).TrySend(pkt(1, 2, "ping"))
	tn.net.Endpoint(2).TrySend(pkt(2, 1, "pong"))
	tn.runUntilDrained(t, 200)
	if p, ok := tn.net.Endpoint(2).Recv(); !ok || string(p.Payload) != "ping" {
		t.Fatal("ping lost")
	}
	if p, ok := tn.net.Endpoint(1).Recv(); !ok || string(p.Payload) != "pong" {
		t.Fatal("pong lost")
	}
}

func TestBackpressureMaxPending(t *testing.T) {
	tn := newXbar(NetConfig{MaxPendingPkts: 2}, 1, 2)
	a := tn.net.Endpoint(1)
	if !a.TrySend(pkt(1, 2, "one")) || !a.TrySend(pkt(1, 2, "two")) {
		t.Fatal("first sends refused")
	}
	if a.TrySend(pkt(1, 2, "three")) {
		t.Fatal("send beyond MaxPendingPkts accepted")
	}
	if a.CanSend() {
		t.Fatal("CanSend true at limit")
	}
	tn.runUntilDrained(t, 200)
	if !a.CanSend() {
		t.Fatal("CanSend false after drain")
	}
}

func TestPerSrcTagOrderPreserved(t *testing.T) {
	tn := newXbar(NetConfig{}, 1, 2)
	a, b := tn.net.Endpoint(1), tn.net.Endpoint(2)
	const n = 20
	sent := 0
	var got []string
	for cycle := 0; cycle < 2000 && len(got) < n; cycle++ {
		if sent < n {
			p := pkt(1, 2, fmt.Sprintf("m%02d", sent))
			p.Tag = 5
			if a.TrySend(p) {
				sent++
			}
		}
		tn.clk.RunCycles(1)
		for {
			p, ok := b.Recv()
			if !ok {
				break
			}
			got = append(got, string(p.Payload))
		}
	}
	if len(got) != n {
		t.Fatalf("received %d/%d packets", len(got), n)
	}
	for i, s := range got {
		if want := fmt.Sprintf("m%02d", i); s != want {
			t.Fatalf("order violated at %d: got %q want %q (all: %v)", i, s, want, got)
		}
	}
}

// runAllPairs floods one packet per ordered (src,dst) pair into the
// fabric and asserts every one arrives intact at its destination — the
// shared delivery (and, for ring/torus, deadlock-freedom) check for
// multi-switch topologies.
func runAllPairs(t *testing.T, clk *sim.Clock, net *Network, ids []noctypes.NodeID, maxCycles int) {
	t.Helper()
	type key struct{ src, dst noctypes.NodeID }
	want := map[key]bool{}
	var sends []*Packet
	for _, s := range ids {
		for _, d := range ids {
			if s == d {
				continue
			}
			p := pkt(s, d, fmt.Sprintf("%d->%d", s, d))
			sends = append(sends, p)
			want[key{s, d}] = true
		}
	}
	recvd := map[key]bool{}
	i := 0
	for cycle := 0; cycle < maxCycles && len(recvd) < len(want); cycle++ {
		for i < len(sends) {
			p := sends[i]
			if !net.Endpoint(p.Src).TrySend(p) {
				break
			}
			i++
		}
		clk.RunCycles(1)
		for _, id := range ids {
			for {
				p, ok := net.Endpoint(id).Recv()
				if !ok {
					break
				}
				if p.Dst != id {
					t.Fatalf("misrouted: %v arrived at %v", p, id)
				}
				if want := fmt.Sprintf("%d->%d", p.Src, p.Dst); string(p.Payload) != want {
					t.Fatalf("payload corrupted: %q want %q", p.Payload, want)
				}
				recvd[key{p.Src, p.Dst}] = true
			}
		}
	}
	if len(recvd) != len(want) {
		t.Fatalf("delivered %d/%d flows", len(recvd), len(want))
	}
}

func TestMeshAllPairs(t *testing.T) {
	for _, mode := range []SwitchingMode{Wormhole, StoreAndForward} {
		t.Run(mode.String(), func(t *testing.T) {
			k := sim.NewKernel()
			clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
			nodes := map[noctypes.NodeID]Coord{}
			var ids []noctypes.NodeID
			for y := 0; y < 3; y++ {
				for x := 0; x < 3; x++ {
					id := noctypes.NodeID(y*3 + x)
					nodes[id] = Coord{x, y}
					ids = append(ids, id)
				}
			}
			cfg := NetConfig{Mode: mode, BufDepth: 16}
			net := NewMesh(clk, cfg, MeshSpec{W: 3, H: 3, Nodes: nodes})
			runAllPairs(t, clk, net, ids, 5000)
		})
	}
}

func TestRingAllPairs(t *testing.T) {
	for _, mode := range []SwitchingMode{Wormhole, StoreAndForward} {
		t.Run(mode.String(), func(t *testing.T) {
			for _, n := range []int{2, 5, 8} {
				k := sim.NewKernel()
				clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
				var ids []noctypes.NodeID
				for i := 0; i < n; i++ {
					ids = append(ids, noctypes.NodeID(i+1))
				}
				net := NewRing(clk, NetConfig{Mode: mode, BufDepth: 16}, ids)
				runAllPairs(t, clk, net, ids, 8000)
			}
		})
	}
}

func TestTorusAllPairs(t *testing.T) {
	for _, mode := range []SwitchingMode{Wormhole, StoreAndForward} {
		t.Run(mode.String(), func(t *testing.T) {
			for _, dim := range []struct{ w, h int }{{4, 4}, {3, 2}, {1, 4}} {
				k := sim.NewKernel()
				clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
				nodes := map[noctypes.NodeID]Coord{}
				var ids []noctypes.NodeID
				for y := 0; y < dim.h; y++ {
					for x := 0; x < dim.w; x++ {
						id := noctypes.NodeID(y*dim.w + x + 1)
						nodes[id] = Coord{x, y}
						ids = append(ids, id)
					}
				}
				net := NewTorus(clk, NetConfig{Mode: mode, BufDepth: 16}, MeshSpec{W: dim.w, H: dim.h, Nodes: nodes})
				runAllPairs(t, clk, net, ids, 8000)
			}
		})
	}
}

// TestRingShorterPathsThanMeshRow pins the wraparound advantage: on an
// 8-ring the worst-case route is 4 links + ejection, where a 8x1 mesh
// line would need 7.
func TestRingWrapShortensPaths(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
	var ids []noctypes.NodeID
	for i := 0; i < 8; i++ {
		ids = append(ids, noctypes.NodeID(i+1))
	}
	net := NewRing(clk, NetConfig{}, ids)
	for s := range ids {
		for d := range ids {
			if s == d {
				continue
			}
			fwd := (d - s + 8) % 8
			hops := fwd
			if hops > 8-fwd {
				hops = 8 - fwd
			}
			if got := len(net.Path(ids[s], ids[d])); got != hops+1 {
				t.Fatalf("path %v->%v: %d links, want %d", ids[s], ids[d], got, hops+1)
			}
		}
	}
	// Half-way-around ties split by source parity — even sources go
	// clockwise, odd counter-clockwise — so neither unidirectional ring
	// carries all the longest flows.
	if p := net.Path(ids[0], ids[4]); p[0].Port != ringCW {
		t.Fatalf("even-source tie did not go clockwise: %v", p)
	}
	if p := net.Path(ids[1], ids[5]); p[0].Port != ringCCW {
		t.Fatalf("odd-source tie did not go counter-clockwise: %v", p)
	}
}

// TestTorusDatelineVCSwitch verifies the deadlock-avoidance mechanism
// itself: a packet that crosses a wrap link arrives on the escape VC,
// one that stays inside the dimension arrives on VC0.
func TestTorusDatelineVCSwitch(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
	nodes := map[noctypes.NodeID]Coord{}
	var ids []noctypes.NodeID
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			id := noctypes.NodeID(y*4 + x + 1)
			nodes[id] = Coord{x, y}
			ids = append(ids, id)
		}
	}
	net := NewTorus(clk, NetConfig{}, MeshSpec{W: 4, H: 4, Nodes: nodes})

	lastVC := func(src, dst noctypes.NodeID) uint8 {
		dstEp := net.Endpoint(dst)
		net.Endpoint(src).TrySend(pkt(src, dst, "probe"))
		vc := uint8(255)
		for c := 0; c < 500; c++ {
			// Sample the head of the ejection buffer before the endpoint
			// consumes it: that is the VC the flit travelled its last link
			// on (the local port never rewrites VCs).
			if f, ok := dstEp.ej.Peek(); ok {
				vc = f.VC
			}
			clk.RunCycles(1)
			if _, ok := dstEp.Recv(); ok {
				if vc == 255 {
					t.Fatalf("probe %v->%v arrived without an observed flit", src, dst)
				}
				return vc
			}
		}
		t.Fatalf("probe %v->%v never arrived", src, dst)
		return 0
	}

	// (0,0) -> (1,0): one east hop, no wrap: stays on VC0.
	if vc := lastVC(ids[0], ids[1]); vc != VCNormal {
		t.Fatalf("non-wrapping probe on VC%d, want VC0", vc)
	}
	// (3,0) -> (0,0): east wrap link is the X dateline: arrives on VC1.
	if vc := lastVC(ids[3], ids[0]); vc != VCLocked {
		t.Fatalf("X-wrap probe on VC%d, want VC1 (dateline switch)", vc)
	}
	// (0,3) -> (0,0): south wrap is the Y dateline: arrives on VC1.
	if vc := lastVC(ids[12], ids[0]); vc != VCLocked {
		t.Fatalf("Y-wrap probe on VC%d, want VC1 (dateline switch)", vc)
	}
}

func TestMeshXYPath(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
	nodes := map[noctypes.NodeID]Coord{
		0: {0, 0}, 1: {2, 0}, 2: {0, 1}, 3: {2, 1},
	}
	net := NewMesh(clk, NetConfig{}, MeshSpec{W: 3, H: 2, Nodes: nodes})
	// XY from (0,0) to (2,1): East, East, South, Local = 4 links.
	path := net.Path(0, 3)
	if len(path) != 4 {
		t.Fatalf("path length = %d, want 4 (%v)", len(path), path)
	}
	last := path[len(path)-1]
	if last.Port != portLocal {
		t.Fatalf("path does not end at a local port: %v", path)
	}
	// Reverse path differs (YX vs XY asymmetry is fine; both are 4 links).
	if rev := net.Path(3, 0); len(rev) != 4 {
		t.Fatalf("reverse path length = %d", len(rev))
	}
}

func TestTreeDelivery(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
	ids := []noctypes.NodeID{10, 11, 12, 13, 14, 15}
	net := NewTree(clk, NetConfig{}, 2, ids)
	tn := &testNet{k: k, clk: clk, net: net}

	// Cross-leaf and intra-leaf traffic.
	net.Endpoint(10).TrySend(pkt(10, 11, "intra"))
	net.Endpoint(10).TrySend(pkt(10, 15, "cross"))
	tn.runUntilDrained(t, 500)
	if p, ok := net.Endpoint(11).Recv(); !ok || string(p.Payload) != "intra" {
		t.Fatal("intra-leaf packet lost")
	}
	if p, ok := net.Endpoint(15).Recv(); !ok || string(p.Payload) != "cross" {
		t.Fatal("cross-leaf packet lost")
	}
}

func TestLargePayloadIntegrity(t *testing.T) {
	tn := newXbar(NetConfig{BufDepth: 4}, 1, 2)
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	p := &Packet{Header: Header{Kind: KindReq, Dst: 2, Src: 1}, Payload: payload}
	if !tn.net.Endpoint(1).TrySend(p) {
		t.Fatal("send refused")
	}
	tn.runUntilDrained(t, 1000)
	got, ok := tn.net.Endpoint(2).Recv()
	if !ok {
		t.Fatal("large packet lost")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Fatal("large payload corrupted")
	}
}

func TestSAFOversizePacketPanics(t *testing.T) {
	tn := newXbar(NetConfig{Mode: StoreAndForward, BufDepth: 4}, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize SAF packet did not panic")
		}
	}()
	tn.net.Endpoint(1).TrySend(&Packet{
		Header:  Header{Dst: 2, Src: 1},
		Payload: make([]byte, 100), // 116 wire bytes -> 15 flits > 4
	})
}

func TestWrongSrcPanics(t *testing.T) {
	tn := newXbar(NetConfig{}, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-src send did not panic")
		}
	}()
	tn.net.Endpoint(1).TrySend(pkt(2, 1, "forged"))
}

func TestTransitRecords(t *testing.T) {
	tn := newXbar(NetConfig{}, 1, 2)
	var recs []TransitRecord
	tn.net.OnTransit = func(r TransitRecord) { recs = append(recs, r) }
	tn.net.Endpoint(1).TrySend(pkt(1, 2, "abc"))
	tn.runUntilDrained(t, 100)
	tn.net.Endpoint(2).Recv()
	if len(recs) != 1 {
		t.Fatalf("got %d transit records", len(recs))
	}
	r := recs[0]
	if r.NetworkLatency() <= 0 || r.TotalLatency() < r.NetworkLatency() {
		t.Fatalf("implausible latencies: %+v", r)
	}
	if r.Hops < 1 {
		t.Fatalf("hops = %d", r.Hops)
	}
}

func TestSAFSlowerThanWormholePerHop(t *testing.T) {
	latency := func(mode SwitchingMode) int64 {
		k := sim.NewKernel()
		clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
		nodes := map[noctypes.NodeID]Coord{0: {0, 0}, 1: {3, 0}}
		net := NewMesh(clk, NetConfig{Mode: mode, BufDepth: 32}, MeshSpec{W: 4, H: 1, Nodes: nodes})
		var lat int64 = -1
		net.OnTransit = func(r TransitRecord) { lat = r.NetworkLatency() }
		p := &Packet{Header: Header{Dst: 1, Src: 0}, Payload: make([]byte, 64)} // 10 flits
		net.Endpoint(0).TrySend(p)
		for c := 0; c < 500 && lat < 0; c++ {
			clk.RunCycles(1)
		}
		if lat < 0 {
			t.Fatalf("%s: packet never arrived", mode)
		}
		return lat
	}
	wh, saf := latency(Wormhole), latency(StoreAndForward)
	if saf <= wh {
		t.Fatalf("store-and-forward (%d cyc) not slower than wormhole (%d cyc) on multi-hop multi-flit", saf, wh)
	}
}

func TestNetworkAccessors(t *testing.T) {
	tn := newXbar(NetConfig{}, 5, 6)
	if len(tn.net.Nodes()) != 2 || len(tn.net.Routers()) != 1 {
		t.Fatal("accessor counts wrong")
	}
	if tn.net.Endpoint(5).ID() != 5 {
		t.Fatal("endpoint ID wrong")
	}
	if tn.net.Endpoint(99) != nil {
		t.Fatal("phantom endpoint")
	}
	if tn.net.Config().FlitBytes != 8 {
		t.Fatal("defaults not applied")
	}
}

// saturate floods the fabric with uniform-random traffic from every
// node for busy cycles, then stops injecting and counts whether the
// fabric keeps moving — the deadlock-freedom regression for cyclic
// topologies (a wedged ring shows zero progress in the quiet phase and
// never drains).
func saturate(t *testing.T, clk *sim.Clock, net *Network, ids []noctypes.NodeID, busy, quiet int) {
	t.Helper()
	rng := sim.NewRNG(1)
	for c := 0; c < busy; c++ {
		for i, id := range ids {
			d := rng.Intn(len(ids) - 1)
			if d >= i {
				d++
			}
			ep := net.Endpoint(id)
			ep.TrySend(&Packet{
				Header:  Header{Kind: KindReq, Dst: ids[d], Src: id},
				Payload: make([]byte, 32),
			})
			for {
				if _, ok := ep.Recv(); !ok {
					break
				}
			}
		}
		clk.RunCycles(1)
	}
	for c := 0; c < quiet && !net.Drained(); c++ {
		clk.RunCycles(1)
		for _, id := range ids {
			for {
				if _, ok := net.Endpoint(id).Recv(); !ok {
					break
				}
			}
		}
	}
	if !net.Drained() {
		t.Fatalf("fabric wedged under saturation: %d packets stuck in flight after %d quiet cycles",
			net.InFlight(), quiet)
	}
	// Sanity floor: a wedged fabric stops injecting within its first few
	// hundred cycles (the frozen ring managed 85 in 3000); a merely
	// saturated one keeps absorbing packets as fast as it drains them.
	if net.Injected() < uint64(busy)/4 {
		t.Fatalf("implausibly few injections under saturation: %d in %d cycles", net.Injected(), busy)
	}
}

// TestRingSaturationNoDeadlock pins the fix for the wormhole ring
// deadlock: dateline VCs alone cannot help when an output port is held
// head-to-tail by a blocked packet (the physical-link cycle closes
// around the ring); cut-through admission guarantees held outputs
// drain.
func TestRingSaturationNoDeadlock(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
	var ids []noctypes.NodeID
	for i := 0; i < 16; i++ {
		ids = append(ids, noctypes.NodeID(i+1))
	}
	saturate(t, clk, NewRing(clk, NetConfig{}, ids), ids, 3000, 4000)
}

func TestTorusSaturationNoDeadlock(t *testing.T) {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
	nodes := map[noctypes.NodeID]Coord{}
	var ids []noctypes.NodeID
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			id := noctypes.NodeID(y*4 + x + 1)
			nodes[id] = Coord{x, y}
			ids = append(ids, id)
		}
	}
	saturate(t, clk, NewTorus(clk, NetConfig{}, MeshSpec{W: 4, H: 4, Nodes: nodes}), ids, 3000, 4000)
}
