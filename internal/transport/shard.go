package transport

import (
	"fmt"

	"gonoc/internal/sim"
)

// This file partitions one fabric across N kernel shards. The partition is
// spatial — every router (with its input lanes) and every endpoint (with its
// send/eject/receive queues and packet pool) is owned by exactly one shard —
// and the single-writer discipline of the serial fabric carries over: each
// lane still has exactly one component staging into it per cycle. The only
// new mechanism is the exchange wire (xwire), which carries a writer's
// staged flits across a shard boundary so the writer never touches a lane it
// does not own.
//
// Determinism: a lane's committed contents after each edge are a pure
// function of what its single writer staged, in staging order. The xwire
// preserves that order (it is drained front to back into the destination
// lane before the owner commits), and its credit check reads only fields
// that are stable for the whole Eval phase (startLen and capacity, written
// only at commit). Admission decisions, lane contents, and therefore every
// downstream statistic are byte-identical to the serial run for any shard
// count. Exchange buffers are drained in a fixed (shard, link, seq) order —
// wires are created in deterministic builder order and each carries its
// flits in staging order — though with one writer per lane the order is
// forced; the fixed order makes that visible and keeps it so if lanes ever
// gain multiple feeders.

// netMode selects how the fabric's per-cycle work is driven.
type netMode uint8

const (
	// modeSerial: the PR 7 single-threaded netTick. Always used when
	// NetConfig.Shards <= 1; every code path is byte-for-byte the serial
	// one.
	modeSerial netMode = iota
	// modeForkJoin: netTick forks one goroutine per shard inside its Eval
	// and Update, joining before returning. The fabric's clock, packet IDs,
	// and external callers (NIUs, benchmarks) stay serial. Default when
	// NetConfig.Shards >= 2.
	modeForkJoin
	// modeShardClocks: each shard's tick runs on its own sim.ShardGroup
	// clock; cross-shard observation (transit records) merges at the
	// group's horizon barrier. Entered via BindShards.
	modeShardClocks
)

// pktPool is a packet-descriptor free list. Each shard owns one, so pooled
// descriptors never cross goroutines (no races, no false sharing); the
// serial fabric uses a single pool with identical behaviour.
type pktPool struct {
	free []*Packet
}

func (pl *pktPool) get() *Packet {
	if k := len(pl.free); k > 0 {
		p := pl.free[k-1]
		pl.free[k-1] = nil
		pl.free = pl.free[:k-1]
		return p
	}
	return &Packet{}
}

func (pl *pktPool) newPacket(payloadBytes int) *Packet {
	p := pl.get()
	if cap(p.Payload) < payloadBytes {
		p.Payload = make([]byte, payloadBytes)
	} else {
		p.Payload = p.Payload[:payloadBytes]
		clear(p.Payload)
	}
	return p
}

func (pl *pktPool) recycle(p *Packet) {
	if p == nil {
		return
	}
	payload := p.Payload[:0]
	*p = Packet{}
	p.Payload = payload
	pl.free = append(pl.free, p)
}

// xwire is a staged exchange buffer for one cross-shard link: the single
// writer of a remote lane stages flits here during its Eval, and the lane's
// owning shard drains them into the lane's staging window during its Update
// (before committing the lane). Credit is mirrored writer-side: canPush
// reads only dst.startLen and dst.capacity, both stable during the parallel
// Eval phase, plus the wire's own staged count — exactly the quantity the
// serial writer's dst.pend would hold.
type xwire struct {
	dst    *flitQ
	ring   flitSlots
	stride int
	n      int // flits staged this cycle, in staging order
}

func newXwire(dst *flitQ) *xwire {
	if dst.unbounded {
		// Unbounded lanes are endpoint send queues, which are always
		// written by their own endpoint's shard; a cross-shard writer is a
		// partition bug.
		panic(fmt.Sprintf("transport: exchange wire to unbounded lane %q", dst.name))
	}
	// Staged flits can never exceed capacity - startLen <= capacity, so a
	// flat capacity-sized buffer needs no wraparound.
	return &xwire{dst: dst, ring: newFlitSlots(dst.capacity, dst.stride), stride: dst.stride}
}

// canPush mirrors flitQ.canPush for the remote lane: the committed length
// at cycle start plus this wire's own staged flits.
func (w *xwire) canPush(k int) bool {
	return w.dst.startLen+w.n+k <= w.dst.capacity
}

// stage reserves the next slot and returns its index into w.ring; the
// caller fills the parallel arrays directly, as with flitQ.stagePush.
func (w *xwire) stage() int {
	i := w.n
	w.n++
	return i
}

// drain copies the staged flits into the destination lane's staging window
// in staging order. Called by the lane's owning shard during its Update,
// before the lane commits.
func (w *xwire) drain() {
	for i := 0; i < w.n; i++ {
		si := w.dst.stagePush()
		w.dst.ring.copySlot(si, &w.ring, i, w.stride)
	}
	w.n = 0
}

// pendingTransit is a completed packet journey observed by an ejecting
// shard, deferred to the serial merge point (the source endpoint's times
// map and the OnTransit hook are not shard-local).
type pendingTransit struct {
	pkt   *Packet
	eject int64
	hops  uint8
}

// shardState is everything one shard owns: its routers and endpoints, the
// lanes it commits, the exchange wires it drains, its packet free list, and
// its slices of the fabric-wide counters.
type shardState struct {
	routers []*Router
	eps     []*Endpoint
	qs      []*flitQ // lanes committed by this shard
	wires   []*xwire // exchange wires whose destination lanes this shard owns
	pool    pktPool

	injected, ejected uint64

	transits []pendingTransit
}

// planShards partitions the fabric. routerShard[i] is router i's shard;
// epShard (indexed in attach order) may be nil, in which case each endpoint
// follows its router. Builders call this once, after all attaches, when
// cfg.Shards >= 2. Empty shards are legal: a shard that owns nothing simply
// ticks nothing.
func (n *Network) planShards(routerShard []int, epShard []int) {
	S := n.cfg.Shards
	if S < 2 {
		panic(fmt.Sprintf("transport: planShards with Shards=%d", S))
	}
	if len(routerShard) != len(n.routers) {
		panic(fmt.Sprintf("transport: planShards: %d router assignments for %d routers", len(routerShard), len(n.routers)))
	}
	if epShard == nil {
		epShard = make([]int, len(n.epList))
		for i, ep := range n.epList {
			epShard[i] = routerShard[ep.router.index]
		}
	}
	if len(epShard) != len(n.epList) {
		panic(fmt.Sprintf("transport: planShards: %d endpoint assignments for %d endpoints", len(epShard), len(n.epList)))
	}
	n.shards = make([]shardState, S)
	n.routerShard = routerShard

	// Lane ownership: a router owns its input lanes; an endpoint owns its
	// send queue and ejection buffer. The owner is always the lane's
	// reader, so pops never cross a shard boundary.
	owner := make(map[*flitQ]int, len(n.qs))
	for ri, r := range n.routers {
		s := routerShard[ri]
		if s < 0 || s >= S {
			panic(fmt.Sprintf("transport: planShards: router %d assigned to shard %d of %d", ri, s, S))
		}
		n.shards[s].routers = append(n.shards[s].routers, r)
		for _, vcs := range r.lanes {
			for _, q := range vcs {
				owner[q] = s
			}
		}
	}
	for i, ep := range n.epList {
		s := epShard[i]
		if s < 0 || s >= S {
			panic(fmt.Sprintf("transport: planShards: endpoint %d assigned to shard %d of %d", i, s, S))
		}
		ep.shard = s
		ep.pool = &n.shards[s].pool
		n.shards[s].eps = append(n.shards[s].eps, ep)
		owner[ep.sendQ] = s
		owner[ep.ej] = s
	}
	// Partition the commit list, preserving the serial commit order within
	// each shard.
	for _, q := range n.qs {
		s, ok := owner[q]
		if !ok {
			panic(fmt.Sprintf("transport: planShards: lane %q has no owner", q.name))
		}
		n.shards[s].qs = append(n.shards[s].qs, q)
	}
	// Exchange wires, in fixed (shard, link, seq) construction order:
	// router outputs by (router index, output port, VC), then endpoint
	// injections by (attach order, VC). Endpoint ejection lanes alias one
	// flitQ across both VCs, so consecutive aliased outputs share one wire —
	// the credit mirror must count both VCs' pushes against the one lane.
	for ri, r := range n.routers {
		rs := routerShard[ri]
		for o := range r.outs {
			for v := 0; v < NumVCs; v++ {
				dst := r.outs[o][v]
				if dst == nil || owner[dst] == rs {
					continue
				}
				if r.xouts == nil {
					r.xouts = make([][]*xwire, len(r.outs))
					for p := range r.xouts {
						r.xouts[p] = make([]*xwire, NumVCs)
					}
				}
				if v > 0 && dst == r.outs[o][v-1] {
					r.xouts[o][v] = r.xouts[o][v-1]
					continue
				}
				w := newXwire(dst)
				r.xouts[o][v] = w
				n.shards[owner[dst]].wires = append(n.shards[owner[dst]].wires, w)
			}
		}
	}
	for i, ep := range n.epList {
		es := epShard[i]
		for v := 0; v < NumVCs; v++ {
			lane := ep.router.lanes[ep.port][v]
			if owner[lane] == es {
				continue
			}
			w := newXwire(lane)
			ep.xinj[v] = w
			n.shards[owner[lane]].wires = append(n.shards[owner[lane]].wires, w)
		}
	}
	n.mode = modeForkJoin
}

// NumShards returns the number of shards the fabric is partitioned into
// (1 when serial).
func (n *Network) NumShards() int {
	if n.shards == nil {
		return 1
	}
	return len(n.shards)
}

// ShardOf returns the shard owning a router by index.
func (n *Network) ShardOf(router int) int {
	if n.routerShard == nil {
		return 0
	}
	return n.routerShard[router]
}

// ShardOccupancy returns the flits currently buffered in shard s's lanes.
// Read it between cycles (it is not synchronized against a running group).
func (n *Network) ShardOccupancy(s int) int {
	t := 0
	for _, q := range n.shards[s].qs {
		t += q.occupancy()
	}
	return t
}

// shardLookahead derives the group's conservative horizon from the minimum
// cross-shard link latency. Every lane in the fabric is a flitQ with
// register semantics — flits staged on one edge become visible on the next —
// so every cross-shard link (exchange wire) has a forward latency of
// exactly one cycle, and the minimum over the cut is one cycle. The group
// barriers every cycle, matching the lookahead exactly: no shard can
// observe a peer's current-cycle writes before the barrier publishes them.
func (n *Network) shardLookahead() int64 {
	const laneLatencyCycles = 1
	return laneLatencyCycles
}

// BindShards moves the fabric onto a sim.ShardGroup: each shard's tick runs
// on its own group clock, and cross-shard transit records merge at the
// group's horizon barrier. The fabric must have been built with
// NetConfig.Shards equal to the group's shard count. Not compatible with
// probes (instrumentation assumes a serial fabric) and must be called
// before the simulation starts.
//
// After BindShards, TrySend/Recv/Recycle for an endpoint must be called
// only from components registered on that endpoint's shard clock
// (Endpoint.ShardClock), and packet IDs switch from one fabric-wide
// sequence to per-endpoint streams — unique and deterministic, but
// different values from the serial run. Nothing downstream of the fabric
// depends on ID values, so results remain byte-identical.
func (n *Network) BindShards(g *sim.ShardGroup) {
	if n.shards == nil {
		panic("transport: BindShards requires NetConfig.Shards >= 2 at build time")
	}
	if n.mode == modeShardClocks {
		panic("transport: BindShards called twice")
	}
	if n.probe != nil {
		panic("transport: sharded fabrics do not support probes")
	}
	if g.Shards() != len(n.shards) {
		panic(fmt.Sprintf("transport: group has %d shards, fabric partitioned into %d", g.Shards(), len(n.shards)))
	}
	n.mode = modeShardClocks
	g.SetLookahead(n.shardLookahead())
	g.SetSerial(n.resolveTransits)
	for s := range n.shards {
		g.Clock(s).Register(&shardTick{n: n, s: s})
	}
	for _, ep := range n.epList {
		ep.clk = g.Clock(ep.shard)
	}
}

// ShardClock returns the clock driving this endpoint's shard (the fabric
// clock when serial). Components that talk to the endpoint — sources,
// sinks — must register here so their calls stay on the owning shard.
func (ep *Endpoint) ShardClock() *sim.Clock { return ep.clk }

// Shard returns the endpoint's owning shard (0 when serial).
func (ep *Endpoint) Shard() int { return ep.shard }

// shardTick drives one shard's slice of the fabric from its group clock.
type shardTick struct {
	n *Network
	s int
}

func (t *shardTick) Eval(cycle int64) { t.n.shardEval(t.s, cycle) }

func (t *shardTick) Update(cycle int64) { t.n.shardUpdate(t.s, cycle) }

// shardEval runs one cycle of shard s's routers and endpoints. Reads are
// confined to committed lane state (any shard's) and shard-local mutables;
// writes are confined to shard-owned lanes and exchange wires.
func (n *Network) shardEval(s int, cycle int64) {
	st := &n.shards[s]
	for _, r := range st.routers {
		r.eval(cycle)
	}
	for _, ep := range st.eps {
		ep.eval(cycle)
	}
}

// shardUpdate commits shard s: drain inbound exchange wires into the lanes
// this shard owns, then publish every owned lane, exactly as the serial
// netTick's Update does for the whole fabric.
func (n *Network) shardUpdate(s int, cycle int64) {
	st := &n.shards[s]
	for _, w := range st.wires {
		if w.n > 0 {
			w.drain()
		}
	}
	for _, q := range st.qs {
		q.commit()
	}
	for _, r := range st.routers {
		r.clearFreed()
	}
	for _, ep := range st.eps {
		if !ep.recvQ.Quiescent() {
			ep.recvQ.Update(cycle)
		}
	}
}

// resolveTransits is the serial merge point for completed packet journeys:
// it runs with every shard quiesced (at the group's horizon barrier in
// shard-clock mode, or at the head of the fabric Update in fork-join mode)
// and resolves each ejected packet against its source endpoint's lifecycle
// map in fixed shard order, then hands the record to OnTransit.
func (n *Network) resolveTransits(cycle int64) {
	for s := range n.shards {
		st := &n.shards[s]
		for i := range st.transits {
			tr := &st.transits[i]
			rec := TransitRecord{
				Pkt:        tr.pkt,
				EjectCycle: tr.eject,
				Hops:       int(tr.hops),
			}
			if src := n.eps[tr.pkt.Src]; src != nil {
				tm := src.times[tr.pkt.ID]
				rec.QueuedCycle = tm.queued
				rec.InjectCycle = tm.injected
				delete(src.times, tr.pkt.ID)
			}
			n.OnTransit(rec)
			tr.pkt = nil
		}
		st.transits = st.transits[:0]
	}
}

// forkJoin runs f(s) for every shard concurrently and returns when all have
// finished, re-raising the first panic on the caller's goroutine.
func (n *Network) forkJoin(f func(s int)) {
	type result struct{ panicked any }
	S := len(n.shards)
	done := make(chan result, S-1)
	for s := 1; s < S; s++ {
		go func(s int) {
			var res result
			defer func() {
				if r := recover(); r != nil {
					res.panicked = r
				}
				done <- res
			}()
			f(s)
		}(s)
	}
	var first any
	func() {
		defer func() {
			if r := recover(); r != nil {
				first = r
			}
		}()
		f(0)
	}()
	for s := 1; s < S; s++ {
		if res := <-done; res.panicked != nil && first == nil {
			first = res.panicked
		}
	}
	if first != nil {
		panic(first)
	}
}

// --- Topology partition defaults ---

// meshShards assigns a W x H grid's routers to contiguous rectangular
// blocks — quadrants when shards is 4 and the grid is square. The shard
// count factors into gx x gy bands with the larger factor along the longer
// grid dimension, so block perimeters (the cross-shard cut) stay small.
func meshShards(shards, W, H int) []int {
	a := 1
	for d := 1; d*d <= shards; d++ {
		if shards%d == 0 {
			a = d
		}
	}
	b := shards / a // a <= b
	gx, gy := b, a
	if H > W {
		gx, gy = a, b
	}
	out := make([]int, W*H)
	for y := 0; y < H; y++ {
		for x := 0; x < W; x++ {
			out[y*W+x] = (y * gy / H * gx) + x*gx/W
		}
	}
	return out
}

// arcShards assigns a ring's N routers to contiguous arcs.
func arcShards(shards, N int) []int {
	out := make([]int, N)
	for i := range out {
		out[i] = i * shards / N
	}
	return out
}
