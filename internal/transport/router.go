package transport

import (
	"fmt"

	"gonoc/internal/noctypes"
	"gonoc/internal/obs"
)

// SwitchingMode selects how switches handle packets. The paper's layering
// claim (§1) is that this choice is invisible at the transaction level —
// experiment E3 verifies exactly that.
type SwitchingMode uint8

const (
	// Wormhole: a packet's flits stream through as soon as the head wins
	// an output; buffers hold a few flits per hop.
	Wormhole SwitchingMode = iota
	// StoreAndForward: a switch buffers the entire packet before
	// competing for an output; per-hop latency grows with packet length.
	StoreAndForward
)

// String renders a SwitchingMode.
func (m SwitchingMode) String() string {
	if m == Wormhole {
		return "wormhole"
	}
	return "store-and-forward"
}

// RouterConfig parameterizes one switch.
type RouterConfig struct {
	Mode     SwitchingMode
	BufDepth int  // flit buffer depth per (input port, VC)
	QoS      bool // priority-aware output arbitration; false = flat RR

	// CutThrough makes output allocation virtual-cut-through: an output
	// is granted only when the downstream buffer can hold the candidate
	// packet entirely. An output then never stalls mid-packet (each
	// input lane has exactly one feeder output, so reserved space cannot
	// be stolen), which removes held output ports from the deadlock
	// dependency graph — on ring and torus fabrics the physical links
	// form a cycle, and a packet streaming wormhole-style through a held
	// output would close it even across the dateline VC switch. Ring and
	// torus builders set this; acyclic fabrics don't need it.
	CutThrough bool
	FlitBytes  int // flit width, for CutThrough packet sizing
}

type laneRef struct{ port, vc int }

var noLane = laneRef{-1, -1}

// RouterStats aggregates a switch's activity.
type RouterStats struct {
	FlitsMoved uint64
	PktsMoved  uint64
	LockStalls uint64   // allocation attempts denied by a lock reservation
	BusyStalls uint64   // allocation attempts denied by a busy output
	OutBusy    []uint64 // per-output busy (flit-moved) cycles
	OutStall   []uint64 // per-output cycles a granted output moved no flit
}

// Router is an N-port NoC switch. It owns its input buffers (one
// struct-of-arrays flit lane per port per virtual channel); its outputs
// are references to the downstream hop's input lanes or to an
// endpoint's ejection buffer. It is not a clocked component itself: the
// owning Network drives every switch and commits every lane in one
// batched pass per clock edge.
//
// Arbitration: an output is held by one packet from head to tail
// (wormhole) or for a buffered packet's full streaming (store-and-
// forward). Free outputs are granted to the highest-priority competing
// head flit (when QoS is on), round-robin across ports for fairness.
//
// Legacy-lock handling (paper §3: switches "take specific decisions when
// they see LOCK-related packets"): when a lock-flagged packet's tail
// passes an output, the output stays reserved for that packet's source
// until an unlock-flagged packet's tail passes. Other sources' packets
// cannot allocate a reserved output — the transport-level cost the
// exclusive-access service avoids.
type Router struct {
	name  string
	index int // position in the network's router list
	cfg   RouterConfig

	lanes    [][]*flitQ // [port][vc] input lanes (owned)
	outs     [][]*flitQ // [port][vc] downstream lanes (referenced)
	laneHdr  [][]Header // [port][vc] header of packet in flight
	laneAl   [][]int    // [port][vc] allocated output, -1
	outHold  []laneRef  // per output: lane holding it
	outFreed []bool     // freed this cycle; not reallocatable
	outLock  []int32    // per output: locked-for source NodeID, -1
	rr       []int      // per output: round-robin port pointer

	table map[noctypes.NodeID]int

	// cands is the arbitration candidate scratch, reused across cycles
	// so steady-state arbitration never allocates.
	cands []arbCand

	// vcOut, when non-nil, rewrites a flit's virtual channel as it leaves
	// the switch: vcOut[in][out] is the VC flits arriving on input port
	// `in` travel on after leaving output `out` (-1 keeps the flit's
	// current VC). Ring and torus builders use it for dateline VC
	// switching (Dally/Seitz): a packet crossing the wrap link moves to
	// the escape VC, which breaks the channel-dependency cycle a ring
	// would otherwise close.
	vcOut [][]int8

	// xouts, when non-nil, marks outputs whose downstream lane lives on
	// another shard: xouts[o][vc] is the exchange wire flits leaving
	// output o on channel vc stage into instead of the lane itself (the
	// wire's owner drains them at the shard barrier; see shard.go). Nil
	// on serial fabrics and for same-shard outputs, so the unsharded hot
	// path pays one nil check.
	xouts [][]*xwire

	// probe, when non-nil, observes flits, stalls, buffer occupancy and
	// VC allocations (Network.SetProbe distributes it). Every emission
	// site is behind a nil check, so disabled instrumentation costs one
	// branch and no allocations on the hot path.
	probe obs.Probe

	stats RouterStats
}

type arbCand struct {
	ln  laneRef
	pri noctypes.Priority
}

// newRouter creates a router with numPorts ports and allocates its
// input lanes on the owning network's batched fabric tick. Builders
// place the router in n.routers and wire outputs afterwards.
func newRouter(n *Network, name string, numPorts int, cfg RouterConfig) *Router {
	if cfg.BufDepth <= 0 {
		panic(fmt.Sprintf("transport: router %q: BufDepth must be positive", name))
	}
	if cfg.FlitBytes <= 0 {
		panic(fmt.Sprintf("transport: router %q: FlitBytes must be positive", name))
	}
	r := &Router{
		name:  name,
		cfg:   cfg,
		table: make(map[noctypes.NodeID]int),
	}
	r.lanes = make([][]*flitQ, numPorts)
	r.outs = make([][]*flitQ, numPorts)
	r.laneHdr = make([][]Header, numPorts)
	r.laneAl = make([][]int, numPorts)
	for p := 0; p < numPorts; p++ {
		r.lanes[p] = make([]*flitQ, NumVCs)
		r.outs[p] = make([]*flitQ, NumVCs)
		r.laneHdr[p] = make([]Header, NumVCs)
		r.laneAl[p] = make([]int, NumVCs)
		for v := 0; v < NumVCs; v++ {
			r.lanes[p][v] = n.addLane(fmt.Sprintf("%s.in%d.vc%d", name, p, v), cfg.BufDepth)
			r.laneAl[p][v] = -1
		}
	}
	r.outHold = make([]laneRef, numPorts)
	r.outFreed = make([]bool, numPorts)
	r.outLock = make([]int32, numPorts)
	r.rr = make([]int, numPorts)
	for o := range r.outHold {
		r.outHold[o] = noLane
		r.outLock[o] = -1
	}
	r.stats.OutBusy = make([]uint64, numPorts)
	r.stats.OutStall = make([]uint64, numPorts)
	return r
}

// Name returns the router's name.
func (r *Router) Name() string { return r.name }

// Ports returns the number of ports.
func (r *Router) Ports() int { return len(r.lanes) }

// Stats returns a copy of the router's counters.
func (r *Router) Stats() RouterStats {
	s := r.stats
	s.OutBusy = append([]uint64(nil), r.stats.OutBusy...)
	s.OutStall = append([]uint64(nil), r.stats.OutStall...)
	return s
}

// setRoute declares that packets for node leave through port.
func (r *Router) setRoute(node noctypes.NodeID, port int) {
	if port < 0 || port >= len(r.lanes) {
		panic(fmt.Sprintf("transport: router %q: route %v -> bad port %d", r.name, node, port))
	}
	r.table[node] = port
}

// routeFor returns the output port for a destination. Unroutable
// destinations are topology-construction bugs and panic.
func (r *Router) routeFor(dst noctypes.NodeID) int {
	p, ok := r.table[dst]
	if !ok {
		panic(fmt.Sprintf("transport: router %q has no route to %v", r.name, dst))
	}
	return p
}

// setVCOut declares that flits arriving on input port in leave output
// out on virtual channel vc (overriding the VC they arrived on). Lazily
// allocates the rewrite table; unset pairs keep the flit's VC.
func (r *Router) setVCOut(in, out int, vc uint8) {
	if r.vcOut == nil {
		r.vcOut = make([][]int8, len(r.lanes))
		for p := range r.vcOut {
			row := make([]int8, len(r.lanes))
			for o := range row {
				row[o] = -1
			}
			r.vcOut[p] = row
		}
	}
	r.vcOut[in][out] = int8(vc)
}

// connectOut wires output port o to the given per-VC downstream lanes.
func (r *Router) connectOut(o int, vcBufs [NumVCs]*flitQ) {
	for v := 0; v < NumVCs; v++ {
		r.outs[o][v] = vcBufs[v]
	}
}

// eval runs one cycle of switch operation; the Network's fabric tick
// calls it once per clock edge.
func (r *Router) eval(cycle int64) {
	if r.probe != nil {
		r.sampleBuffers(cycle)
	}

	// Phase 1: continuing packets move one flit toward their held output.
	for o := range r.outHold {
		ln := r.outHold[o]
		if ln == noLane {
			continue
		}
		if !r.moveFlit(cycle, o, ln) {
			r.noteStall(cycle, o)
		}
	}

	// Phase 2: allocate outputs that were free at cycle start.
	for o := range r.outHold {
		if r.outHold[o] != noLane || r.outFreed[o] {
			continue
		}
		if r.outs[o][VCNormal] == nil {
			continue // unconnected port (mesh edge)
		}
		win := r.arbitrate(o)
		if win == noLane {
			continue
		}
		lane := r.lanes[win.port][win.vc]
		hs := lane.slot(0)
		r.outHold[o] = win
		r.laneAl[win.port][win.vc] = o
		r.laneHdr[win.port][win.vc] = lane.ring.hdr[hs]
		r.rr[o] = win.port + 1
		if r.probe != nil {
			hdr := &lane.ring.hdr[hs]
			r.probe.Event(obs.Event{
				Kind: obs.KindVCAlloc, Cycle: cycle, PktID: lane.ring.pktID[hs],
				Src: hdr.Src, Dst: hdr.Dst,
				Router: r.index, Port: o, VC: r.outVC(win.port, o, lane.ring.vc[hs]),
			})
		}
		if !r.moveFlit(cycle, o, win) {
			r.noteStall(cycle, o)
		}
	}
}

// clearFreed resets the per-cycle output-freed marks; the Network's
// fabric tick calls it in the commit phase.
func (r *Router) clearFreed() {
	for o := range r.outFreed {
		r.outFreed[o] = false
	}
}

// noteStall records that a granted output moved no flit this cycle.
func (r *Router) noteStall(cycle int64, o int) {
	r.stats.OutStall[o]++
	if r.probe != nil {
		r.probe.Event(obs.Event{Kind: obs.KindStall, Cycle: cycle, Router: r.index, Port: o})
	}
}

// sampleBuffers reports the start-of-cycle occupancy of every buffer
// downstream of this switch's outputs — the congestion a link's flits
// run into. Runs only with a probe attached. Endpoint ejection ports
// alias one buffer across both VCs; the duplicate sample is skipped so
// the heatmap's VC1 column stays meaningful.
func (r *Router) sampleBuffers(cycle int64) {
	for o := range r.outs {
		for v := 0; v < NumVCs; v++ {
			dst := r.outs[o][v]
			if dst == nil || (v > 0 && dst == r.outs[o][v-1]) {
				continue
			}
			r.probe.Event(obs.Event{
				Kind: obs.KindBufSample, Cycle: cycle,
				Router: r.index, Port: o, VC: uint8(v), Val: dst.len(),
			})
		}
	}
}

// moveFlit attempts to forward one flit from lane ln through output o,
// handling tail release and lock reservation bookkeeping. It reports
// whether a flit moved (false = a stall cycle for the output). The move
// is slot-to-slot: a struct-of-arrays copy from the input lane's head
// into the downstream lane's staging slot, with the VC rewrite and hop
// count applied in place.
func (r *Router) moveFlit(cycle int64, o int, ln laneRef) bool {
	lane := r.lanes[ln.port][ln.vc]
	if lane.clen == 0 {
		return false // wormhole bubble: body flits not yet arrived
	}
	hs := lane.slot(0)
	vc := r.outVC(ln.port, o, lane.ring.vc[hs])
	dst := r.outs[o][vc]
	if dst == nil {
		panic(fmt.Sprintf("transport: router %q output %d has no VC%d buffer", r.name, o, vc))
	}
	var dstRing *flitSlots
	var si int
	if r.xouts != nil && r.xouts[o][vc] != nil {
		// Cross-shard hop: stage into the exchange wire. Its credit check
		// mirrors the downstream lane's exactly, so backpressure behaves
		// byte-identically to the serial fabric.
		xw := r.xouts[o][vc]
		if !xw.canPush(1) {
			return false // downstream backpressure
		}
		si = xw.stage()
		dstRing = &xw.ring
	} else {
		if !dst.canPush(1) {
			return false // downstream backpressure
		}
		si = dst.stagePush()
		dstRing = &dst.ring
	}
	dstRing.copySlot(si, &lane.ring, hs, lane.stride)
	dstRing.vc[si] = vc
	dstRing.hops[si] = lane.ring.hops[hs] + 1
	pktID := lane.ring.pktID[hs]
	tail := lane.ring.flags[hs]&slotTail != 0
	lane.pop()
	r.stats.FlitsMoved++
	r.stats.OutBusy[o]++
	if r.probe != nil {
		r.probe.Event(obs.Event{
			Kind: obs.KindFlit, Cycle: cycle, PktID: pktID,
			Router: r.index, Port: o, VC: vc,
		})
	}
	if tail {
		r.stats.PktsMoved++
		hdr := r.laneHdr[ln.port][ln.vc]
		r.outHold[o] = noLane
		r.outFreed[o] = true
		r.laneAl[ln.port][ln.vc] = -1
		// Lock reservations persist between the packets of a locked
		// sequence and dissolve when the unlocking packet's tail passes.
		if hdr.Locked {
			if hdr.Unlock {
				r.outLock[o] = -1
			} else {
				r.outLock[o] = int32(hdr.Src)
			}
		}
	}
	return true
}

// outVC returns the virtual channel a flit arriving on input port in
// with channel vc travels on after leaving output o.
func (r *Router) outVC(in, o int, vc uint8) uint8 {
	if r.vcOut != nil {
		if nv := r.vcOut[in][o]; nv >= 0 {
			return uint8(nv)
		}
	}
	return vc
}

// ready reports whether the lane at (port,vc) has a packet ready to
// request an output: a committed head flit, and — in store-and-forward
// mode — the packet's tail already buffered. It returns the head slot's
// ring index.
func (r *Router) ready(port, vc int) (int, bool) {
	lane := r.lanes[port][vc]
	if lane.clen == 0 {
		return 0, false
	}
	hs := lane.slot(0)
	if lane.ring.flags[hs]&slotHead == 0 {
		return 0, false
	}
	if r.cfg.Mode == StoreAndForward && lane.ring.flags[hs]&slotTail == 0 {
		found := false
		for i := 1; i < lane.clen; i++ {
			if lane.ring.flags[lane.slot(i)]&slotTail != 0 {
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return hs, true
}

// arbitrate picks the winning lane for free output o, or noLane.
func (r *Router) arbitrate(o int) laneRef {
	cands := r.cands[:0]
	for p := range r.lanes {
		for v := 0; v < NumVCs; v++ {
			if r.laneAl[p][v] != -1 {
				continue
			}
			hs, ok := r.ready(p, v)
			if !ok {
				continue
			}
			lane := r.lanes[p][v]
			hdr := &lane.ring.hdr[hs]
			if r.routeFor(hdr.Dst) != o {
				continue
			}
			if lk := r.outLock[o]; lk >= 0 && noctypes.NodeID(lk) != hdr.Src {
				r.stats.LockStalls++
				continue
			}
			// Virtual-cut-through admission: grant only with space for
			// the whole packet downstream (canPush keeps the check
			// consistent with the lanes' one-cycle credit semantics).
			if r.cfg.CutThrough {
				need := FlitCount(HeaderBytes+int(hdr.PayloadLen), r.cfg.FlitBytes)
				ovc := r.outVC(p, o, lane.ring.vc[hs])
				if r.xouts != nil && r.xouts[o][ovc] != nil {
					if !r.xouts[o][ovc].canPush(need) {
						continue
					}
				} else if !r.outs[o][ovc].canPush(need) {
					continue
				}
			}
			cands = append(cands, arbCand{laneRef{p, v}, hdr.Priority})
		}
	}
	r.cands = cands[:0] // keep the (possibly grown) scratch for next cycle
	if len(cands) == 0 {
		return noLane
	}
	// QoS: restrict to the highest priority present.
	if r.cfg.QoS {
		var max noctypes.Priority
		for _, c := range cands {
			if c.pri > max {
				max = c.pri
			}
		}
		kept := cands[:0]
		for _, c := range cands {
			if c.pri == max {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	// Round-robin across ports starting at rr[o]; VCLocked beats VCNormal
	// on the same port so unlocking packets are never starved.
	best := noLane
	bestRank := 1 << 30
	n := len(r.lanes)
	for _, c := range cands {
		rank := ((c.ln.port-r.rr[o])%n+n)%n*NumVCs + (NumVCs - 1 - c.ln.vc)
		if rank < bestRank {
			bestRank = rank
			best = c.ln
		}
	}
	if len(cands) > 1 {
		r.stats.BusyStalls += uint64(len(cands) - 1)
	}
	return best
}
