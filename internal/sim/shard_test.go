package sim

import (
	"strings"
	"testing"
)

// counterComp increments its slot during Eval; the slice is only read by the
// serial hook (exclusive at barrier A) and by the test after RunCycles.
type counterComp struct {
	slot    *int64
	panicAt int64
}

func (c *counterComp) Eval(cycle int64) {
	if c.panicAt != 0 && cycle == c.panicAt {
		panic("counterComp: deliberate test panic")
	}
	*c.slot++
}
func (c *counterComp) Update(cycle int64) {}

func TestShardGroupLockstep(t *testing.T) {
	const shards, cycles = 3, 25
	g := NewShardGroup("test", shards, Nanosecond, 0)
	counts := make([]int64, shards)
	for i := 0; i < shards; i++ {
		g.Clock(i).Register(&counterComp{slot: &counts[i]})
	}
	// The serial hook sees every shard's Eval effects for the current
	// cycle: if the barrier protocol held, the counters all equal cycle.
	var hookCalls int64
	g.SetSerial(func(cycle int64) {
		hookCalls++
		for i, c := range counts {
			if c != cycle {
				t.Errorf("cycle %d: shard %d counter = %d (evals not quiesced at barrier A)", cycle, i, c)
			}
		}
	})
	g.Seal()
	defer g.Close()

	g.RunCycles(10)
	g.RunCycles(cycles - 10)
	if hookCalls != cycles {
		t.Fatalf("serial hook ran %d times, want %d", hookCalls, cycles)
	}
	if g.Cycle() != cycles {
		t.Fatalf("Cycle() = %d, want %d", g.Cycle(), cycles)
	}
	for i := 0; i < shards; i++ {
		if got := g.Clock(i).Cycle(); got != cycles {
			t.Fatalf("shard %d clock at cycle %d, want %d", i, got, cycles)
		}
		if counts[i] != cycles {
			t.Fatalf("shard %d counter = %d, want %d", i, counts[i], cycles)
		}
	}
	if g.Steps() == 0 {
		t.Fatal("Steps() = 0 after running")
	}
	if g.Lookahead() != 1 {
		t.Fatalf("default Lookahead() = %d, want 1", g.Lookahead())
	}
}

func TestShardGroupPanicPropagates(t *testing.T) {
	g := NewShardGroup("test", 4, Nanosecond, 0)
	counts := make([]int64, 4)
	for i := 0; i < 4; i++ {
		c := &counterComp{slot: &counts[i]}
		if i == 2 {
			c.panicAt = 5 // one shard fails mid-run
		}
		g.Clock(i).Register(c)
	}
	g.Seal()
	defer g.Close()

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RunCycles did not propagate the shard panic")
		}
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "deliberate test panic") {
			t.Fatalf("propagated panic = %v, want the original shard panic", r)
		}
	}()
	g.RunCycles(20)
}

func TestShardGroupSetLookaheadValidates(t *testing.T) {
	g := NewShardGroup("test", 2, Nanosecond, 0)
	defer g.Close()
	g.SetLookahead(3) // coarser than the barrier cadence: admissible
	if g.Lookahead() != 3 {
		t.Fatalf("Lookahead() = %d, want 3", g.Lookahead())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetLookahead(0) did not panic")
		}
	}()
	g.SetLookahead(0)
}

func TestShardGroupCloseIdempotent(t *testing.T) {
	g := NewShardGroup("test", 2, Nanosecond, 0)
	var a, b int64
	g.Clock(0).Register(&counterComp{slot: &a})
	g.Clock(1).Register(&counterComp{slot: &b})
	g.Seal()
	g.RunCycles(3)
	g.Close()
	g.Close()
	if a != 3 || b != 3 {
		t.Fatalf("counters = %d,%d, want 3,3", a, b)
	}
}
