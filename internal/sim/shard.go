package sim

import (
	"fmt"
	"sync"
	"time"
)

// ShardGroup runs one logical simulation on N kernel shards. Each shard owns
// a private Kernel, a private Clock (identical period and offset across
// shards), and a dedicated worker goroutine, so the shards' event heaps and
// clock edges advance with no shared mutable state between barriers.
//
// The group is a conservative (null-message style) parallel scheduler: every
// shard may advance freely up to the current time horizon, and the horizon
// advances only when every shard has reached it. The horizon step is derived
// from the minimum cross-shard link latency (SetLookahead) — with all fabric
// lanes registering their cargo one cycle after it is staged, the minimum
// lookahead is one cycle, so the group exchanges at every clock edge. A
// coarser lookahead would permit a rarer barrier; exchanging every cycle is
// strictly more conservative and therefore always correct.
//
// Protocol per clock edge (enforced by a fence component that Seal registers
// last on every shard clock):
//
//  1. Each shard runs its Eval phase, reading only state committed on the
//     previous edge and staging writes (including cross-shard exchange
//     buffers) without publishing them.
//  2. fence.Eval: barrier A. When the last shard arrives, that shard alone
//     runs the serial hook (SetSerial) — the deterministic cross-shard merge
//     point — while every other shard waits.
//  3. Each shard runs its Update phase, committing its own staged state and
//     draining exchange buffers targeted at lanes it owns.
//  4. fence.Update: barrier B. No shard starts the next edge's Eval until
//     every shard has committed, so Evals never observe a half-published
//     cycle.
//
// Determinism: barriers only constrain timing, never ordering of state
// mutations — each piece of state has exactly one writing shard per phase,
// and the serial hook runs alone. Results are byte-identical to a
// single-shard run of the same model.
type ShardGroup struct {
	name      string
	ks        []*Kernel
	clks      []*Clock
	lookahead int64 // conservative horizon step, in cycles (>= barrier cadence of 1)
	serial    func(cycle int64)
	bar       *cyclicBarrier

	cmds []chan int64 // absolute cycle targets, one channel per worker
	acks chan shardAck
	wg   sync.WaitGroup

	// Per-shard horizon instrumentation, written only by the owning worker
	// between barriers and read by the coordinator between RunCycles calls
	// (the command/ack channels provide the happens-before edges).
	stalls []uint64 // edges on which the shard waited at barrier A for a peer
	waitNS []int64  // wall-clock ns spent blocked at barriers A and B

	sealed bool
	closed bool
	broken bool // a shard panicked; the group can no longer advance
}

type shardAck struct {
	shard    int
	err      any  // non-nil: the original panic value from this shard
	poisoned bool // shard aborted because a peer poisoned the barrier
}

// NewShardGroup creates n kernels and n clocks named "<name>.s<i>", all with
// the same period and offset. Register per-shard components on Clock(i),
// then call Seal before the first RunCycles.
func NewShardGroup(name string, n int, period, offset Time) *ShardGroup {
	if n < 1 {
		panic(fmt.Sprintf("sim: ShardGroup %q: need at least 1 shard, got %d", name, n))
	}
	g := &ShardGroup{
		name:      name,
		ks:        make([]*Kernel, n),
		clks:      make([]*Clock, n),
		lookahead: 1,
		bar:       newCyclicBarrier(n),
		cmds:      make([]chan int64, n),
		acks:      make(chan shardAck, n),
		stalls:    make([]uint64, n),
		waitNS:    make([]int64, n),
	}
	for i := 0; i < n; i++ {
		g.ks[i] = NewKernel()
		g.clks[i] = NewClock(g.ks[i], fmt.Sprintf("%s.s%d", name, i), period, offset)
		g.cmds[i] = make(chan int64)
	}
	return g
}

// Shards returns the number of shards in the group.
func (g *ShardGroup) Shards() int { return len(g.ks) }

// Kernel returns shard i's kernel.
func (g *ShardGroup) Kernel(i int) *Kernel { return g.ks[i] }

// Clock returns shard i's clock.
func (g *ShardGroup) Clock(i int) *Clock { return g.clks[i] }

// Cycle returns the current cycle count. All shard clocks are in lockstep
// between RunCycles calls, so shard 0 speaks for the group.
func (g *ShardGroup) Cycle() int64 { return g.clks[0].Cycle() }

// Steps returns the total number of kernel events executed across shards.
func (g *ShardGroup) Steps() uint64 {
	var t uint64
	for _, k := range g.ks {
		t += k.Steps()
	}
	return t
}

// Pending returns the total number of scheduled, unexecuted events.
func (g *ShardGroup) Pending() int {
	t := 0
	for _, k := range g.ks {
		t += k.Pending()
	}
	return t
}

// Stalls returns the number of edges on which shard i reached barrier A
// before some peer (a horizon stall). Deterministic workloads produce
// deterministic event counts but not deterministic stall counts: stalls
// depend on OS scheduling.
func (g *ShardGroup) Stalls(i int) uint64 { return g.stalls[i] }

// WaitNS returns the cumulative wall-clock nanoseconds shard i has spent
// blocked at horizon barriers. Like Stalls, this is a wall-clock quantity
// and is not deterministic.
func (g *ShardGroup) WaitNS(i int) int64 { return g.waitNS[i] }

// Lookahead returns the conservative horizon step in cycles.
func (g *ShardGroup) Lookahead() int64 { return g.lookahead }

// SetLookahead records the conservative horizon derived from the minimum
// cross-shard link latency, in cycles. The group barriers every cycle, so
// any lookahead >= 1 is admissible (the barrier cadence may be at most the
// lookahead, never more). A lookahead below one cycle would mean two shards
// can affect each other within a single edge, which the shard partition must
// never allow.
func (g *ShardGroup) SetLookahead(cycles int64) {
	if cycles < 1 {
		panic(fmt.Sprintf("sim: ShardGroup %q: lookahead %d cycles is below the 1-cycle barrier cadence", g.name, cycles))
	}
	g.lookahead = cycles
}

// SetSerial installs the hook run by exactly one shard at barrier A of every
// edge, after all shards' Eval phases have quiesced and before any Update
// phase commits. This is where cross-shard observations (e.g. packet
// lifecycle records) are merged in a fixed order.
func (g *ShardGroup) SetSerial(fn func(cycle int64)) {
	if g.sealed {
		panic(fmt.Sprintf("sim: ShardGroup %q: SetSerial after Seal", g.name))
	}
	g.serial = fn
}

// Seal registers the horizon fence as the last component on every shard
// clock and starts the worker goroutines. No components may be registered
// after Seal — the fence must evaluate after every model component on its
// clock for the barrier protocol to hold.
func (g *ShardGroup) Seal() {
	if g.sealed {
		panic(fmt.Sprintf("sim: ShardGroup %q: already sealed", g.name))
	}
	g.sealed = true
	for i := range g.clks {
		g.clks[i].Register(&shardFence{g: g, shard: i})
	}
	g.wg.Add(len(g.cmds))
	for i := range g.cmds {
		go g.worker(i)
	}
}

// RunCycles advances every shard by exactly n edges, in lockstep. It blocks
// until all shards have reached the target cycle. If any shard panics, the
// barrier is poisoned so the remaining shards abort instead of deadlocking,
// and the first panic value is re-raised on the caller's goroutine.
func (g *ShardGroup) RunCycles(n int64) {
	if !g.sealed {
		panic(fmt.Sprintf("sim: ShardGroup %q: RunCycles before Seal", g.name))
	}
	if g.closed || g.broken {
		panic(fmt.Sprintf("sim: ShardGroup %q: RunCycles on a closed or broken group", g.name))
	}
	if n <= 0 {
		return
	}
	target := g.Cycle() + n
	for _, c := range g.cmds {
		c <- target
	}
	var firstErr any
	for range g.cmds {
		ack := <-g.acks
		if ack.err != nil && firstErr == nil {
			firstErr = ack.err
		}
	}
	if firstErr != nil {
		g.broken = true
		panic(firstErr)
	}
}

// Close shuts down the worker goroutines. Idempotent. The group cannot be
// reused after Close.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, c := range g.cmds {
		close(c)
	}
	if g.broken {
		// Panicked workers have already exited; waiting for the rest would
		// deadlock on the poisoned barrier if any are still mid-cycle, but
		// poisoning guarantees they all aborted, so the WaitGroup drains.
		g.wg.Wait()
		return
	}
	g.wg.Wait()
}

func (g *ShardGroup) worker(i int) {
	defer g.wg.Done()
	for target := range g.cmds[i] {
		err, poisoned := g.runTo(i, target)
		g.acks <- shardAck{shard: i, err: err, poisoned: poisoned}
		if err != nil || poisoned {
			return // the group is broken; stop consuming commands
		}
	}
}

// runTo advances shard i to the absolute cycle target, converting a panic
// (the shard's own, or a barrier-poisoned abort) into an ack payload.
func (g *ShardGroup) runTo(i int, target int64) (err any, poisoned bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(barrierPoisoned); ok {
				poisoned = true
				return
			}
			// Poison the barrier so peers blocked at A or B abort instead
			// of waiting forever for this shard.
			g.bar.poison()
			err = r
		}
	}()
	g.clks[i].RunCycles(target - g.clks[i].Cycle())
	return nil, false
}

// shardFence is the per-shard horizon fence. Seal registers it last, so its
// Eval runs after every model Eval on the shard and its Update runs after
// every model Update.
type shardFence struct {
	g     *ShardGroup
	shard int
}

// Eval is barrier A: all shards' Eval phases have quiesced. The last shard
// to arrive runs the serial merge hook.
func (f *shardFence) Eval(cycle int64) {
	g := f.g
	t0 := time.Now()
	last := g.bar.await(func() {
		if g.serial != nil {
			g.serial(cycle)
		}
	})
	g.waitNS[f.shard] += time.Since(t0).Nanoseconds()
	if !last {
		g.stalls[f.shard]++
	}
}

// Update is barrier B: all shards' Update phases have committed. No shard
// proceeds to the next edge until every shard has passed.
func (f *shardFence) Update(cycle int64) {
	g := f.g
	t0 := time.Now()
	g.bar.await(nil)
	g.waitNS[f.shard] += time.Since(t0).Nanoseconds()
}

// barrierPoisoned is the panic value delivered to shards blocked on a
// barrier when a peer panics. It is converted into a quiet abort by runTo.
type barrierPoisoned struct{}

// cyclicBarrier is a reusable N-party barrier. The last arriver of each
// generation runs the action (if any) while the others remain blocked, then
// releases the generation. A poisoned barrier panics every current and
// future waiter with barrierPoisoned.
type cyclicBarrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    uint64
	broken bool
}

func newCyclicBarrier(n int) *cyclicBarrier {
	b := &cyclicBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n parties have arrived. The last arriver runs
// action before releasing the others and returns true; all other parties
// return false.
func (b *cyclicBarrier) await(action func()) (last bool) {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		panic(barrierPoisoned{})
	}
	b.count++
	if b.count == b.n {
		// Run the serial action while holding the barrier closed: peers are
		// blocked in cond.Wait, so the action has exclusive access to all
		// shard state. Release the lock around the action so a panic inside
		// it unwinds through poison() cleanly.
		b.mu.Unlock()
		func() {
			defer func() {
				if r := recover(); r != nil {
					b.poison()
					panic(r)
				}
			}()
			if action != nil {
				action()
			}
		}()
		b.mu.Lock()
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return true
	}
	gen := b.gen
	for b.gen == gen && !b.broken {
		b.cond.Wait()
	}
	poisoned := b.broken
	b.mu.Unlock()
	if poisoned {
		panic(barrierPoisoned{})
	}
	return false
}

// poison permanently breaks the barrier: every blocked and future waiter
// panics with barrierPoisoned.
func (b *cyclicBarrier) poison() {
	b.mu.Lock()
	b.broken = true
	b.mu.Unlock()
	b.cond.Broadcast()
}
