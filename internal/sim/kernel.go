// Package sim provides the deterministic discrete-event simulation kernel
// that every other layer of the NoC model is built on: an event queue with
// picosecond resolution, clock domains with two-phase (Eval/Update) clocked
// components, staged FIFOs with register semantics, and seeded random
// number generation.
//
// Determinism is a design requirement: two runs with the same seed and the
// same configuration produce bit-identical results, regardless of component
// registration order. This is what makes the reproduction experiments
// (internal/experiments, printed by cmd/nocbench) meaningful.
package sim

import (
	"errors"
	"fmt"
)

// Time is simulation time in picoseconds.
type Time int64

// Common time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// String renders a Time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Millisecond && t%Millisecond == 0:
		return fmt.Sprintf("%dms", t/Millisecond)
	case t >= Microsecond && t%Microsecond == 0:
		return fmt.Sprintf("%dus", t/Microsecond)
	case t >= Nanosecond && t%Nanosecond == 0:
		return fmt.Sprintf("%dns", t/Nanosecond)
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// ErrDeadline is returned by RunWhile when the deadline passes before the
// condition is satisfied.
var ErrDeadline = errors.New("sim: deadline reached before condition was satisfied")

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("sim: cannot schedule event in the past")

type event struct {
	at  Time
	seq uint64 // tie-break: same-time events run in schedule order
	fn  func()
}

// eventHeap is a binary min-heap ordered by (at, seq). It is hand-rolled
// rather than built on container/heap because the interface-based API
// boxes every event into an interface{} on push and pop — two heap
// allocations per clock edge on the simulator's hottest path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the fn reference
	s = s[:n]
	*h = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Kernel is a discrete-event simulator. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	steps   uint64
}

// NewKernel returns a kernel at time zero with an empty event queue.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of scheduled, not yet executed events.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute time t. Scheduling in the past returns
// ErrPast; scheduling at the current time is allowed and runs after all
// currently queued same-time events.
func (k *Kernel) At(t Time, fn func()) error {
	if t < k.now {
		return fmt.Errorf("%w: now=%v requested=%v", ErrPast, k.now, t)
	}
	k.seq++
	k.events.push(event{at: t, seq: k.seq, fn: fn})
	return nil
}

// After schedules fn to run d picoseconds after the current time. Negative
// delays panic: they indicate a modeling bug, not a runtime condition.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	if err := k.At(k.now+d, fn); err != nil {
		panic(err) // unreachable: now+d >= now for d >= 0
	}
}

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty or the kernel is stopped.
func (k *Kernel) Step() bool {
	if k.stopped || len(k.events) == 0 {
		return false
	}
	e := k.events.pop()
	k.now = e.at
	k.steps++
	e.fn()
	return true
}

// Stop halts the simulation: subsequent Step/Run calls do nothing until
// Resume is called. Safe to call from inside an event.
func (k *Kernel) Stop() { k.stopped = true }

// Resume clears a previous Stop.
func (k *Kernel) Resume() { k.stopped = false }

// Stopped reports whether Stop has been called without a matching Resume.
func (k *Kernel) Stopped() bool { return k.stopped }

// Run executes events until the queue is empty or Stop is called. Do not
// use Run with free-running clocks (they self-reschedule forever); use
// RunUntil or RunWhile instead.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes all events scheduled at or before t, then advances the
// clock to exactly t. Events scheduled after t remain pending.
func (k *Kernel) RunUntil(t Time) {
	for !k.stopped && len(k.events) > 0 && k.events[0].at <= t {
		k.Step()
	}
	if !k.stopped && t > k.now {
		k.now = t
	}
}

// RunFor is RunUntil(Now()+d).
func (k *Kernel) RunFor(d Time) { k.RunUntil(k.now + d) }

// RunWhile steps the simulation while cond returns true. It returns nil as
// soon as cond is false, ErrDeadline if the deadline passes first, and an
// error if the event queue drains while cond still holds.
//
// The deadline is checked against the next pending event's time before that
// event executes: an event scheduled past the deadline never runs. Without
// the peek, a sparse event queue could jump the clock well past the deadline
// (running the late event's side effects) before the overrun was noticed.
func (k *Kernel) RunWhile(cond func() bool, deadline Time) error {
	for cond() {
		if k.now > deadline {
			return fmt.Errorf("%w (now=%v)", ErrDeadline, k.now)
		}
		if !k.stopped && len(k.events) > 0 && k.events[0].at > deadline {
			return fmt.Errorf("%w (next event at %v)", ErrDeadline, k.events[0].at)
		}
		if !k.Step() {
			return errors.New("sim: event queue drained while condition still true")
		}
	}
	return nil
}
