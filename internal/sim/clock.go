package sim

import "fmt"

// Clocked is a synchronous component driven by a Clock. On each rising edge
// the clock calls Eval on every registered component, then Update on every
// registered component.
//
// Discipline (what makes results registration-order independent):
//   - Eval reads committed state (Pipe contents from previous cycles) and
//     performs the component's work, including Pipe pushes and pops.
//   - Update commits staged state; ordinary components usually have an
//     empty Update, while Pipes use it to publish this cycle's pushes.
type Clocked interface {
	Eval(cycle int64)
	Update(cycle int64)
}

// ClockedFunc adapts a pair of functions to the Clocked interface. Either
// may be nil.
type ClockedFunc struct {
	OnEval   func(cycle int64)
	OnUpdate func(cycle int64)
}

// Eval implements Clocked.
func (c ClockedFunc) Eval(cycle int64) {
	if c.OnEval != nil {
		c.OnEval(cycle)
	}
}

// Update implements Clocked.
func (c ClockedFunc) Update(cycle int64) {
	if c.OnUpdate != nil {
		c.OnUpdate(cycle)
	}
}

// Clock is a free-running clock domain. All components registered on one
// Clock share its frequency; systems may have several Clocks with different
// periods (see phys.CDCFifo for crossing between them).
type Clock struct {
	k       *Kernel
	name    string
	period  Time
	offset  Time
	cycle   int64
	comps   []Clocked
	started bool
	edgeFn  func() // cached method value; rescheduling c.edge directly allocates a closure per cycle
}

// NewClock creates a clock on kernel k with the given period. The first
// rising edge fires at time offset (usually 0). Start must be called before
// edges fire.
func NewClock(k *Kernel, name string, period Time, offset Time) *Clock {
	if period <= 0 {
		panic(fmt.Sprintf("sim: clock %q: period must be positive, got %v", name, period))
	}
	return &Clock{k: k, name: name, period: period, offset: offset}
}

// Name returns the clock's name.
func (c *Clock) Name() string { return c.name }

// Period returns the clock period.
func (c *Clock) Period() Time { return c.period }

// Cycle returns the number of edges that have fired.
func (c *Clock) Cycle() int64 { return c.cycle }

// Kernel returns the kernel this clock is scheduled on.
func (c *Clock) Kernel() *Kernel { return c.k }

// Register adds a component to the clock domain. Components are evaluated
// in registration order, but the Eval/Update discipline makes simulation
// results independent of that order.
func (c *Clock) Register(comp Clocked) {
	if comp == nil {
		panic("sim: Register(nil)")
	}
	c.comps = append(c.comps, comp)
}

// Start schedules the first edge. Calling Start twice is a no-op.
func (c *Clock) Start() {
	if c.started {
		return
	}
	c.started = true
	c.edgeFn = c.edge
	first := c.offset
	if first < c.k.Now() {
		first = c.k.Now()
	}
	if err := c.k.At(first, c.edgeFn); err != nil {
		panic(err)
	}
}

func (c *Clock) edge() {
	c.cycle++
	for _, comp := range c.comps {
		comp.Eval(c.cycle)
	}
	for _, comp := range c.comps {
		comp.Update(c.cycle)
	}
	c.k.After(c.period, c.edgeFn)
}

// TimeFor returns the simulation time spanned by n cycles of this clock.
func (c *Clock) TimeFor(n int64) Time { return Time(n) * c.period }

// RunCycles starts the clock if needed and runs the kernel for exactly n
// more edges of this clock.
func (c *Clock) RunCycles(n int64) {
	c.Start()
	target := c.cycle + n
	c.k.RunWhileClock(c, target)
}

// RunWhileClock steps the kernel until clk has reached targetCycle. It is a
// helper for Clock.RunCycles.
func (k *Kernel) RunWhileClock(clk *Clock, targetCycle int64) {
	for clk.cycle < targetCycle {
		if !k.Step() {
			return
		}
	}
}
