package sim

import "testing"

func TestClockEvalBeforeUpdate(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	var trace []string
	clk.Register(ClockedFunc{
		OnEval:   func(c int64) { trace = append(trace, "a.eval") },
		OnUpdate: func(c int64) { trace = append(trace, "a.update") },
	})
	clk.Register(ClockedFunc{
		OnEval:   func(c int64) { trace = append(trace, "b.eval") },
		OnUpdate: func(c int64) { trace = append(trace, "b.update") },
	})
	clk.RunCycles(1)
	want := []string{"a.eval", "b.eval", "a.update", "b.update"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestClockCycleCount(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", 2*Nanosecond, 0)
	clk.RunCycles(10)
	if clk.Cycle() != 10 {
		t.Fatalf("Cycle() = %d, want 10", clk.Cycle())
	}
	// First edge at t=0, so after 10 edges now = 9 periods.
	if k.Now() != 18*Nanosecond {
		t.Fatalf("Now() = %v, want 18ns", k.Now())
	}
}

func TestClockOffset(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 500*Picosecond)
	var firstEdge Time = -1
	clk.Register(ClockedFunc{OnEval: func(c int64) {
		if firstEdge < 0 {
			firstEdge = k.Now()
		}
	}})
	clk.RunCycles(3)
	if firstEdge != 500*Picosecond {
		t.Fatalf("first edge at %v, want 500ps", firstEdge)
	}
}

func TestTwoClockDomains(t *testing.T) {
	k := NewKernel()
	fast := NewClock(k, "fast", Nanosecond, 0)
	slow := NewClock(k, "slow", 3*Nanosecond, 0)
	var fastN, slowN int
	fast.Register(ClockedFunc{OnEval: func(c int64) { fastN++ }})
	slow.Register(ClockedFunc{OnEval: func(c int64) { slowN++ }})
	fast.Start()
	slow.Start()
	k.RunUntil(30 * Nanosecond)
	if fastN != 31 { // edges at 0..30ns inclusive
		t.Fatalf("fast edges = %d, want 31", fastN)
	}
	if slowN != 11 { // edges at 0,3,...,30
		t.Fatalf("slow edges = %d, want 11", slowN)
	}
}

func TestClockBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock with period 0 did not panic")
		}
	}()
	NewClock(NewKernel(), "bad", 0, 0)
}
