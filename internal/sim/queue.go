package sim

// Queue is a plain unbounded-or-bounded FIFO with immediate visibility,
// for bookkeeping inside a single component (no register semantics).
// A capacity of 0 means unbounded.
type Queue[T any] struct {
	buf []T
	cap int
}

// NewQueue returns a queue; capacity 0 means unbounded.
func NewQueue[T any](capacity int) *Queue[T] {
	return &Queue[T]{cap: capacity}
}

// Len returns the number of queued entries.
func (q *Queue[T]) Len() int { return len(q.buf) }

// Empty reports whether the queue is empty.
func (q *Queue[T]) Empty() bool { return len(q.buf) == 0 }

// Full reports whether a bounded queue is at capacity.
func (q *Queue[T]) Full() bool { return q.cap > 0 && len(q.buf) >= q.cap }

// Push appends v; it returns false if the queue is full.
func (q *Queue[T]) Push(v T) bool {
	if q.Full() {
		return false
	}
	q.buf = append(q.buf, v)
	return true
}

// Peek returns the head without removing it.
func (q *Queue[T]) Peek() (T, bool) {
	var zero T
	if len(q.buf) == 0 {
		return zero, false
	}
	return q.buf[0], true
}

// Pop removes and returns the head.
func (q *Queue[T]) Pop() (T, bool) {
	var zero T
	if len(q.buf) == 0 {
		return zero, false
	}
	v := q.buf[0]
	q.buf = q.buf[1:]
	return v, true
}

// Drain removes and returns all entries in FIFO order.
func (q *Queue[T]) Drain() []T {
	out := q.buf
	q.buf = nil
	return out
}
