package sim

import "testing"

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	if a.Seed() != 42 {
		t.Fatalf("Seed = %d", a.Seed())
	}
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	if NewRNG(1).Int63() == NewRNG(2).Int63() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestRNGForkStable(t *testing.T) {
	// Forking is by (seed, label) only: draw order on the parent must
	// not perturb the child stream.
	a := NewRNG(7)
	for i := 0; i < 10; i++ {
		a.Int63() // consume some parent entropy
	}
	fromDrawn := a.Fork("child").Int63()
	fromFresh := NewRNG(7).Fork("child").Int63()
	if fromDrawn != fromFresh {
		t.Fatal("fork stream depends on parent draw position")
	}
	// Distinct labels give independent streams.
	if NewRNG(7).Fork("x").Int63() == NewRNG(7).Fork("y").Int63() {
		t.Fatal("distinct labels produced identical first draw")
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) || !r.Bool(1.5) {
			t.Fatal("out-of-range probabilities mishandled")
		}
	}
	hits := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / draws
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) hit fraction %.3f", frac)
	}
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(2)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("Range(3,7) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 7; v++ {
		if !seen[v] {
			t.Fatalf("Range(3,7) never produced %d", v)
		}
	}
	// Degenerate and inverted bounds collapse to lo.
	if r.Range(5, 5) != 5 || r.Range(9, 4) != 9 {
		t.Fatal("degenerate Range wrong")
	}
}
