package sim

import (
	"errors"
	"testing"
)

func TestKernelEventOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(30, func() { order = append(order, 3) })
	k.After(10, func() { order = append(order, 1) })
	k.After(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of time order: %v", order)
	}
	if k.Now() != 30 {
		t.Fatalf("final time = %v, want 30", k.Now())
	}
}

func TestKernelSameTimeFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not in schedule order: %v", order)
		}
	}
}

func TestKernelScheduleInPast(t *testing.T) {
	k := NewKernel()
	k.After(100, func() {})
	k.Run()
	if err := k.At(50, func() {}); !errors.Is(err, ErrPast) {
		t.Fatalf("scheduling in the past: err = %v, want ErrPast", err)
	}
}

func TestKernelNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("After(-1) did not panic")
		}
	}()
	NewKernel().After(-1, func() {})
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var ran []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.After(at, func() { ran = append(ran, at) })
	}
	k.RunUntil(25)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(25) executed %d events, want 2 (%v)", len(ran), ran)
	}
	if k.Now() != 25 {
		t.Fatalf("Now() = %v after RunUntil(25)", k.Now())
	}
	if k.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", k.Pending())
	}
	k.RunUntil(100)
	if len(ran) != 4 {
		t.Fatalf("remaining events did not run: %v", ran)
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var hits int
	var rec func()
	rec = func() {
		hits++
		if hits < 5 {
			k.After(7, rec)
		}
	}
	k.After(0, rec)
	k.Run()
	if hits != 5 {
		t.Fatalf("nested rescheduling ran %d times, want 5", hits)
	}
	if k.Now() != 4*7 {
		t.Fatalf("Now() = %v, want 28", k.Now())
	}
}

func TestKernelStopResume(t *testing.T) {
	k := NewKernel()
	var n int
	k.After(1, func() { n++; k.Stop() })
	k.After(2, func() { n++ })
	k.Run()
	if n != 1 {
		t.Fatalf("Stop did not halt the run: n=%d", n)
	}
	k.Resume()
	k.Run()
	if n != 2 {
		t.Fatalf("Resume did not allow remaining events: n=%d", n)
	}
}

func TestKernelRunWhileDeadline(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	clk.Start()
	err := k.RunWhile(func() bool { return true }, 100*Nanosecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("RunWhile: err = %v, want ErrDeadline", err)
	}
}

func TestKernelRunWhileCondition(t *testing.T) {
	k := NewKernel()
	done := false
	k.After(42, func() { done = true })
	if err := k.RunWhile(func() bool { return !done }, Millisecond); err != nil {
		t.Fatalf("RunWhile: %v", err)
	}
	if k.Now() != 42 {
		t.Fatalf("Now() = %v, want 42", k.Now())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ps"},
		{Nanosecond, "1ns"},
		{1500, "1500ps"},
		{2 * Microsecond, "2us"},
		{3 * Millisecond, "3ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestKernelRunWhileDeadlineBeforeLateEvent(t *testing.T) {
	// An event scheduled past the deadline must not execute: RunWhile has
	// to check the next event's time before stepping, not after.
	k := NewKernel()
	fired := false
	k.After(100*Nanosecond, func() { fired = true })
	err := k.RunWhile(func() bool { return !fired }, 50*Nanosecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("RunWhile: err = %v, want ErrDeadline", err)
	}
	if fired {
		t.Fatal("event past the deadline executed before ErrDeadline was reported")
	}
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0 (deadline overrun must not advance time)", k.Now())
	}
	// The late event is still pending and runs normally afterwards.
	if err := k.RunWhile(func() bool { return !fired }, Millisecond); err != nil {
		t.Fatalf("RunWhile after extending deadline: %v", err)
	}
	if !fired || k.Now() != 100*Nanosecond {
		t.Fatalf("fired=%v Now()=%v, want true/100ns", fired, k.Now())
	}
}
