package sim

import (
	"testing"
	"testing/quick"
)

func TestPipeRegisterSemantics(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	p := NewPipe[int](clk, "p", 4)

	var seenAtCycle []int64 // cycle at which consumer first sees the value
	producer := ClockedFunc{OnEval: func(c int64) {
		if c == 1 {
			if !p.Push(42) {
				t.Errorf("push failed on empty pipe")
			}
		}
	}}
	consumer := ClockedFunc{OnEval: func(c int64) {
		if v, ok := p.Pop(); ok {
			if v != 42 {
				t.Errorf("popped %d, want 42", v)
			}
			seenAtCycle = append(seenAtCycle, c)
		}
	}}
	clk.Register(producer)
	clk.Register(consumer)
	clk.RunCycles(5)

	if len(seenAtCycle) != 1 || seenAtCycle[0] != 2 {
		t.Fatalf("value pushed in cycle 1 seen at cycles %v, want [2]", seenAtCycle)
	}
}

// TestPipeOrderIndependence runs the same producer/consumer pair with both
// registration orders and checks identical observable behaviour — the core
// determinism guarantee.
func TestPipeOrderIndependence(t *testing.T) {
	run := func(consumerFirst bool) []int64 {
		k := NewKernel()
		clk := NewClock(k, "clk", Nanosecond, 0)
		p := NewPipe[int](clk, "p", 2)
		var seen []int64
		producer := ClockedFunc{OnEval: func(c int64) {
			p.Push(int(c)) // push every cycle while credit allows
		}}
		consumer := ClockedFunc{OnEval: func(c int64) {
			if c%2 == 0 { // pop every other cycle -> backpressure
				if _, ok := p.Pop(); ok {
					seen = append(seen, c)
				}
			}
		}}
		if consumerFirst {
			clk.Register(consumer)
			clk.Register(producer)
		} else {
			clk.Register(producer)
			clk.Register(consumer)
		}
		clk.RunCycles(20)
		return seen
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("registration order changed behaviour: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("registration order changed behaviour: %v vs %v", a, b)
		}
	}
}

func TestPipeCapacityTurnaround(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	p := NewPipe[int](clk, "p", 1)

	var pushOK []bool
	comp := ClockedFunc{OnEval: func(c int64) {
		switch c {
		case 1:
			pushOK = append(pushOK, p.Push(1)) // fills the single slot
		case 2:
			// Slot occupied: pop it, then try to push. The freed slot must
			// NOT be reusable in the same cycle (1-cycle credit turnaround).
			if _, ok := p.Pop(); !ok {
				t.Error("pop failed in cycle 2")
			}
			pushOK = append(pushOK, p.Push(2))
		case 3:
			pushOK = append(pushOK, p.Push(3)) // now the credit is back
		}
	}}
	clk.Register(comp)
	clk.RunCycles(4)

	want := []bool{true, false, true}
	for i := range want {
		if pushOK[i] != want[i] {
			t.Fatalf("pushOK = %v, want %v", pushOK, want)
		}
	}
}

func TestPipeFIFOOrderAndNoLoss(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	p := NewPipe[int](clk, "p", 3)

	const total = 50
	next := 0
	var got []int
	clk.Register(ClockedFunc{OnEval: func(c int64) {
		for next < total && p.Push(next) {
			next++
		}
	}})
	clk.Register(ClockedFunc{OnEval: func(c int64) {
		for {
			v, ok := p.Pop()
			if !ok {
				break
			}
			got = append(got, v)
		}
	}})
	clk.RunCycles(100)

	if len(got) != total {
		t.Fatalf("received %d values, want %d", len(got), total)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: got %d", i, v)
		}
	}
}

func TestPipePeekAt(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	p := NewPipe[int](clk, "p", 8)
	p.Push(10)
	p.Push(20)
	p.Update(1) // commit manually
	if v, ok := p.PeekAt(1); !ok || v != 20 {
		t.Fatalf("PeekAt(1) = %d,%v want 20,true", v, ok)
	}
	if _, ok := p.PeekAt(2); ok {
		t.Fatal("PeekAt(2) should fail")
	}
	if _, ok := p.PeekAt(-1); ok {
		t.Fatal("PeekAt(-1) should fail")
	}
}

func TestPipeStats(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	p := NewPipe[int](clk, "p", 4)
	clk.Register(ClockedFunc{OnEval: func(c int64) {
		if c <= 3 {
			p.Push(int(c))
		}
	}})
	clk.RunCycles(5)
	s := p.Stats()
	if s.Pushes != 3 {
		t.Fatalf("Pushes = %d, want 3", s.Pushes)
	}
	if s.MaxOcc != 3 {
		t.Fatalf("MaxOcc = %d, want 3", s.MaxOcc)
	}
	_ = k
}

// Property: for any sequence of push/pop operations, a Pipe delivers
// exactly the pushed values, in order, with no loss or duplication.
func TestPipeQuickFIFOProperty(t *testing.T) {
	prop := func(ops []uint8, capRaw uint8) bool {
		capacity := int(capRaw%7) + 1
		k := NewKernel()
		clk := NewClock(k, "clk", Nanosecond, 0)
		p := NewPipe[int](clk, "p", capacity)

		var pushed, popped []int
		next := 0
		i := 0
		comp := ClockedFunc{OnEval: func(c int64) {
			if i >= len(ops) {
				return
			}
			op := ops[i]
			i++
			if op%2 == 0 {
				if p.Push(next) {
					pushed = append(pushed, next)
					next++
				}
			} else {
				if v, ok := p.Pop(); ok {
					popped = append(popped, v)
				}
			}
		}}
		clk.Register(comp)
		clk.RunCycles(int64(len(ops)) + int64(capacity) + 2)
		// Drain what's left.
		for {
			v, ok := p.Pop()
			if !ok {
				break
			}
			popped = append(popped, v)
		}
		if len(pushed) != len(popped) {
			return false
		}
		for j := range pushed {
			if pushed[j] != popped[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueBasics(t *testing.T) {
	q := NewQueue[string](2)
	if !q.Push("a") || !q.Push("b") {
		t.Fatal("pushes to empty bounded queue failed")
	}
	if q.Push("c") {
		t.Fatal("push to full queue succeeded")
	}
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q,%v", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != "a" {
		t.Fatalf("Pop = %q,%v", v, ok)
	}
	rest := q.Drain()
	if len(rest) != 1 || rest[0] != "b" {
		t.Fatalf("Drain = %v", rest)
	}
	if !q.Empty() {
		t.Fatal("queue not empty after drain")
	}
}

func TestQueueUnbounded(t *testing.T) {
	q := NewQueue[int](0)
	for i := 0; i < 1000; i++ {
		if !q.Push(i) {
			t.Fatalf("unbounded push %d failed", i)
		}
	}
	if q.Full() {
		t.Fatal("unbounded queue reports Full")
	}
	if q.Len() != 1000 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGForkStability(t *testing.T) {
	r1 := NewRNG(7)
	// Draw from parent before forking: fork must not depend on parent state.
	r1.Int63()
	f1 := r1.Fork("traffic")

	r2 := NewRNG(7)
	f2 := r2.Fork("traffic")

	for i := 0; i < 50; i++ {
		if f1.Int63() != f2.Int63() {
			t.Fatal("fork depends on parent draw order")
		}
	}
	f3 := NewRNG(7).Fork("other")
	if f3.Int63() == NewRNG(7).Fork("traffic").Int63() {
		t.Log("warning: different labels produced same first draw (possible but unlikely)")
	}
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 9)
		if v < 3 || v > 9 {
			t.Fatalf("Range(3,9) = %d", v)
		}
	}
	if r.Range(5, 5) != 5 {
		t.Fatal("Range(5,5) != 5")
	}
	if r.Range(9, 3) != 9 {
		t.Fatal("Range with hi<lo should return lo")
	}
}

func TestRNGBool(t *testing.T) {
	r := NewRNG(2)
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
	n := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	if n < 2200 || n > 2800 {
		t.Fatalf("Bool(0.25) hit rate %d/10000, outside sanity bounds", n)
	}
}
