package sim

import (
	"testing"
	"testing/quick"
)

func TestPipeRegisterSemantics(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	p := NewPipe[int](clk, "p", 4)

	var seenAtCycle []int64 // cycle at which consumer first sees the value
	producer := ClockedFunc{OnEval: func(c int64) {
		if c == 1 {
			if !p.Push(42) {
				t.Errorf("push failed on empty pipe")
			}
		}
	}}
	consumer := ClockedFunc{OnEval: func(c int64) {
		if v, ok := p.Pop(); ok {
			if v != 42 {
				t.Errorf("popped %d, want 42", v)
			}
			seenAtCycle = append(seenAtCycle, c)
		}
	}}
	clk.Register(producer)
	clk.Register(consumer)
	clk.RunCycles(5)

	if len(seenAtCycle) != 1 || seenAtCycle[0] != 2 {
		t.Fatalf("value pushed in cycle 1 seen at cycles %v, want [2]", seenAtCycle)
	}
}

// TestPipeOrderIndependence runs the same producer/consumer pair with both
// registration orders and checks identical observable behaviour — the core
// determinism guarantee.
func TestPipeOrderIndependence(t *testing.T) {
	run := func(consumerFirst bool) []int64 {
		k := NewKernel()
		clk := NewClock(k, "clk", Nanosecond, 0)
		p := NewPipe[int](clk, "p", 2)
		var seen []int64
		producer := ClockedFunc{OnEval: func(c int64) {
			p.Push(int(c)) // push every cycle while credit allows
		}}
		consumer := ClockedFunc{OnEval: func(c int64) {
			if c%2 == 0 { // pop every other cycle -> backpressure
				if _, ok := p.Pop(); ok {
					seen = append(seen, c)
				}
			}
		}}
		if consumerFirst {
			clk.Register(consumer)
			clk.Register(producer)
		} else {
			clk.Register(producer)
			clk.Register(consumer)
		}
		clk.RunCycles(20)
		return seen
	}
	a, b := run(false), run(true)
	if len(a) != len(b) {
		t.Fatalf("registration order changed behaviour: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("registration order changed behaviour: %v vs %v", a, b)
		}
	}
}

func TestPipeCapacityTurnaround(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	p := NewPipe[int](clk, "p", 1)

	var pushOK []bool
	comp := ClockedFunc{OnEval: func(c int64) {
		switch c {
		case 1:
			pushOK = append(pushOK, p.Push(1)) // fills the single slot
		case 2:
			// Slot occupied: pop it, then try to push. The freed slot must
			// NOT be reusable in the same cycle (1-cycle credit turnaround).
			if _, ok := p.Pop(); !ok {
				t.Error("pop failed in cycle 2")
			}
			pushOK = append(pushOK, p.Push(2))
		case 3:
			pushOK = append(pushOK, p.Push(3)) // now the credit is back
		}
	}}
	clk.Register(comp)
	clk.RunCycles(4)

	want := []bool{true, false, true}
	for i := range want {
		if pushOK[i] != want[i] {
			t.Fatalf("pushOK = %v, want %v", pushOK, want)
		}
	}
}

func TestPipeFIFOOrderAndNoLoss(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	p := NewPipe[int](clk, "p", 3)

	const total = 50
	next := 0
	var got []int
	clk.Register(ClockedFunc{OnEval: func(c int64) {
		for next < total && p.Push(next) {
			next++
		}
	}})
	clk.Register(ClockedFunc{OnEval: func(c int64) {
		for {
			v, ok := p.Pop()
			if !ok {
				break
			}
			got = append(got, v)
		}
	}})
	clk.RunCycles(100)

	if len(got) != total {
		t.Fatalf("received %d values, want %d", len(got), total)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: got %d", i, v)
		}
	}
}

func TestPipePeekAt(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	p := NewPipe[int](clk, "p", 8)
	p.Push(10)
	p.Push(20)
	p.Update(1) // commit manually
	if v, ok := p.PeekAt(1); !ok || v != 20 {
		t.Fatalf("PeekAt(1) = %d,%v want 20,true", v, ok)
	}
	if _, ok := p.PeekAt(2); ok {
		t.Fatal("PeekAt(2) should fail")
	}
	if _, ok := p.PeekAt(-1); ok {
		t.Fatal("PeekAt(-1) should fail")
	}
}

func TestPipeStats(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	p := NewPipe[int](clk, "p", 4)
	clk.Register(ClockedFunc{OnEval: func(c int64) {
		if c <= 3 {
			p.Push(int(c))
		}
	}})
	clk.RunCycles(5)
	s := p.Stats()
	if s.Pushes != 3 {
		t.Fatalf("Pushes = %d, want 3", s.Pushes)
	}
	if s.MaxOcc != 3 {
		t.Fatalf("MaxOcc = %d, want 3", s.MaxOcc)
	}
	_ = k
}

// Property: for any sequence of push/pop operations, a Pipe delivers
// exactly the pushed values, in order, with no loss or duplication.
func TestPipeQuickFIFOProperty(t *testing.T) {
	prop := func(ops []uint8, capRaw uint8) bool {
		capacity := int(capRaw%7) + 1
		k := NewKernel()
		clk := NewClock(k, "clk", Nanosecond, 0)
		p := NewPipe[int](clk, "p", capacity)

		var pushed, popped []int
		next := 0
		i := 0
		comp := ClockedFunc{OnEval: func(c int64) {
			if i >= len(ops) {
				return
			}
			op := ops[i]
			i++
			if op%2 == 0 {
				if p.Push(next) {
					pushed = append(pushed, next)
					next++
				}
			} else {
				if v, ok := p.Pop(); ok {
					popped = append(popped, v)
				}
			}
		}}
		clk.Register(comp)
		clk.RunCycles(int64(len(ops)) + int64(capacity) + 2)
		// Drain what's left.
		for {
			v, ok := p.Pop()
			if !ok {
				break
			}
			popped = append(popped, v)
		}
		if len(pushed) != len(popped) {
			return false
		}
		for j := range pushed {
			if pushed[j] != popped[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeWindowBatchAPI(t *testing.T) {
	k := NewKernel()
	clk := NewClock(k, "clk", Nanosecond, 0)
	p := NewPipe[int](clk, "p", 8)

	// Empty pipe: empty window, quiescent.
	if w := p.Window(); len(w) != 0 {
		t.Fatalf("empty pipe Window() len = %d, want 0", len(w))
	}
	if !p.Quiescent() {
		t.Fatal("empty pipe is not Quiescent")
	}

	// Staged-but-uncommitted entries are invisible to Window and break
	// quiescence until Update publishes them.
	for _, v := range []int{10, 20, 30} {
		if !p.Push(v) {
			t.Fatalf("Push(%d) refused with free capacity", v)
		}
	}
	if w := p.Window(); len(w) != 0 {
		t.Fatalf("Window() sees %d staged entries before commit, want 0", len(w))
	}
	if p.Quiescent() {
		t.Fatal("Quiescent with staged pushes pending")
	}

	clk.RunCycles(1) // commit
	w := p.Window()
	if len(w) != 3 || w[0] != 10 || w[1] != 20 || w[2] != 30 {
		t.Fatalf("Window() after commit = %v, want [10 20 30]", w)
	}
	if !p.Quiescent() {
		t.Fatal("pipe not Quiescent after commit with nothing staged")
	}

	// Consume removes oldest-first and invalidates the credit snapshot
	// until the next Update (the freed slot has register semantics).
	p.Consume(2)
	if w := p.Window(); len(w) != 1 || w[0] != 30 {
		t.Fatalf("Window() after Consume(2) = %v, want [30]", w)
	}
	if p.Quiescent() {
		t.Fatal("Quiescent immediately after Consume (credit snapshot is stale)")
	}
	clk.RunCycles(1)
	if !p.Quiescent() {
		t.Fatal("pipe not Quiescent one cycle after Consume")
	}

	// Consume beyond the committed count panics.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Consume overrun did not panic")
		}
		if msg, ok := r.(string); !ok || msg != `sim: pipe "p": Consume(2) with 1 committed` {
			t.Fatalf("Consume overrun panic = %v", r)
		}
	}()
	p.Consume(2)
}

func TestPipeWindowConsumeMatchesPop(t *testing.T) {
	// Window+Consume is the batch form of Peek+Pop: draining via either
	// path yields the same values in the same order.
	build := func() (*Clock, *Pipe[int]) {
		k := NewKernel()
		clk := NewClock(k, "clk", Nanosecond, 0)
		p := NewPipe[int](clk, "p", 4)
		for v := 1; v <= 4; v++ {
			p.Push(v)
		}
		clk.RunCycles(1)
		return clk, p
	}

	_, a := build()
	var viaPop []int
	for {
		v, ok := a.Pop()
		if !ok {
			break
		}
		viaPop = append(viaPop, v)
	}

	_, b := build()
	viaWindow := append([]int(nil), b.Window()...)
	b.Consume(len(viaWindow))
	if b.Len() != 0 {
		t.Fatalf("Len() = %d after consuming the full window", b.Len())
	}
	if len(viaPop) != len(viaWindow) {
		t.Fatalf("drain mismatch: pop=%v window=%v", viaPop, viaWindow)
	}
	for i := range viaPop {
		if viaPop[i] != viaWindow[i] {
			t.Fatalf("drain mismatch at %d: pop=%v window=%v", i, viaPop, viaWindow)
		}
	}
}
