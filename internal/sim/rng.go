package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a deterministic random source. Every stochastic decision in the
// simulator draws from an RNG forked (by label) from the experiment's root
// seed, so adding a new consumer of randomness does not perturb existing
// streams.
type RNG struct {
	*rand.Rand
	seed int64
}

// NewRNG returns a deterministic RNG for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed this RNG was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Fork derives an independent RNG whose seed is a hash of this RNG's seed
// and the label. Forking is stable: the same (seed, label) always yields
// the same stream, independent of draw order on the parent.
func (r *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	var b [8]byte
	s := uint64(r.seed)
	for i := 0; i < 8; i++ {
		b[i] = byte(s >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return NewRNG(int64(h.Sum64()))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniform integer in [lo, hi] inclusive.
func (r *RNG) Range(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}
