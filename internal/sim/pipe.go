package sim

import "fmt"

// Pipe is a bounded FIFO with register semantics: values pushed during a
// cycle become visible to consumers only at the start of the next cycle
// (the push is committed by the Pipe's Update phase). This models a
// hardware FIFO with a one-cycle forward latency and gives deterministic,
// registration-order-independent behaviour.
//
// Capacity accounting also has register semantics: a slot freed by a Pop
// this cycle cannot be reused by a Push until the next cycle (one-cycle
// credit turnaround), matching typical synchronous FIFO implementations.
//
// A Pipe must be registered on the Clock whose domain it belongs to; the
// NewPipe constructor does this automatically.
type Pipe[T any] struct {
	name    string
	buf     []T // committed entries; the FIFO window starts at head
	head    int // index of the oldest committed entry in buf
	pending []T // pushed this cycle, not yet visible
	cap     int

	// startLen is the committed length at the start of the current cycle
	// (i.e., before any Pops this cycle). Push capacity checks use it so a
	// Pop and Push racing in the same cycle do not depend on Eval order.
	startLen int

	// statistics
	pushes   uint64
	pops     uint64
	maxOcc   int
	sumOcc   uint64
	occTicks uint64
}

// NewPipe creates a Pipe with the given capacity and registers it on clk.
func NewPipe[T any](clk *Clock, name string, capacity int) *Pipe[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: pipe %q: capacity must be positive, got %d", name, capacity))
	}
	p := &Pipe[T]{name: name, cap: capacity}
	clk.Register(p)
	return p
}

// NewUnclockedPipe creates a Pipe that is not attached to any clock; the
// owner must call Update itself each cycle. Used by components that manage
// internal pipes explicitly.
func NewUnclockedPipe[T any](name string, capacity int) *Pipe[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: pipe %q: capacity must be positive, got %d", name, capacity))
	}
	return &Pipe[T]{name: name, cap: capacity}
}

// Name returns the pipe's name.
func (p *Pipe[T]) Name() string { return p.name }

// Cap returns the pipe's capacity.
func (p *Pipe[T]) Cap() int { return p.cap }

// CanPush reports whether n more values can be pushed this cycle.
func (p *Pipe[T]) CanPush(n int) bool {
	return p.startLen+len(p.pending)+n <= p.cap
}

// Push stages v for commit at the end of this cycle. It returns false
// (and stages nothing) if the pipe has no credit this cycle.
func (p *Pipe[T]) Push(v T) bool {
	if !p.CanPush(1) {
		return false
	}
	p.pending = append(p.pending, v)
	p.pushes++
	return true
}

// Len returns the number of committed (consumable) entries.
func (p *Pipe[T]) Len() int { return len(p.buf) - p.head }

// Empty reports whether no committed entries are available.
func (p *Pipe[T]) Empty() bool { return p.Len() == 0 }

// Occupancy returns committed plus staged entries (total storage in use).
func (p *Pipe[T]) Occupancy() int { return p.Len() + len(p.pending) }

// Peek returns the oldest committed entry without removing it.
func (p *Pipe[T]) Peek() (T, bool) {
	var zero T
	if p.Len() == 0 {
		return zero, false
	}
	return p.buf[p.head], true
}

// PeekAt returns the i-th oldest committed entry (0 = head).
func (p *Pipe[T]) PeekAt(i int) (T, bool) {
	var zero T
	if i < 0 || i >= p.Len() {
		return zero, false
	}
	return p.buf[p.head+i], true
}

// Pop removes and returns the oldest committed entry. The freed slot is
// zeroed (releasing any references) and its storage reclaimed in place:
// popping advances a head index instead of re-slicing, so the backing
// array is reused forever instead of creeping forward and forcing
// Update's append to reallocate — the fabric's flit pipes push and pop
// every cycle, making this the simulator's hottest allocation site.
func (p *Pipe[T]) Pop() (T, bool) {
	var zero T
	if p.Len() == 0 {
		return zero, false
	}
	v := p.buf[p.head]
	p.buf[p.head] = zero
	p.head++
	if p.head == len(p.buf) {
		p.buf = p.buf[:0]
		p.head = 0
	}
	p.pops++
	return v, true
}

// Quiescent reports whether an Update would be a no-op beyond stats
// bookkeeping: nothing staged and the credit snapshot already current.
// Owners driving many unclocked pipes per edge use it to skip idle ones.
func (p *Pipe[T]) Quiescent() bool {
	return len(p.pending) == 0 && p.startLen == p.Len()
}

// Window returns the committed entries as a slice, oldest first, without
// removing them. It is the batch form of Peek: a consumer that drains the
// pipe every cycle reads the window once and Consumes its length — one
// call per (pipe, edge) instead of one Pop per entry. The slice aliases
// internal storage and is invalidated by Pop, Consume, or Update.
func (p *Pipe[T]) Window() []T { return p.buf[p.head:] }

// Consume removes the n oldest committed entries (freed slots are zeroed,
// releasing any references). It panics if fewer than n are committed.
func (p *Pipe[T]) Consume(n int) {
	if n < 0 || n > p.Len() {
		panic(fmt.Sprintf("sim: pipe %q: Consume(%d) with %d committed", p.name, n, p.Len()))
	}
	clear(p.buf[p.head : p.head+n])
	p.head += n
	if p.head == len(p.buf) {
		p.buf = p.buf[:0]
		p.head = 0
	}
	p.pops += uint64(n)
}

// Eval implements Clocked; Pipes do no work in the Eval phase.
func (p *Pipe[T]) Eval(cycle int64) {}

// Update implements Clocked: it commits this cycle's pushes and refreshes
// the capacity snapshot.
func (p *Pipe[T]) Update(cycle int64) {
	if len(p.pending) > 0 {
		if p.head > 0 {
			// Compact the live window to the front so the append below
			// reuses the backing array's full capacity.
			n := copy(p.buf, p.buf[p.head:])
			clear(p.buf[n:])
			p.buf = p.buf[:n]
			p.head = 0
		}
		p.buf = append(p.buf, p.pending...)
		p.pending = p.pending[:0]
	}
	p.startLen = p.Len()
	if p.startLen > p.maxOcc {
		p.maxOcc = p.startLen
	}
	p.sumOcc += uint64(p.startLen)
	p.occTicks++
}

// Stats describes cumulative pipe activity.
type PipeStats struct {
	Name   string
	Pushes uint64
	Pops   uint64
	MaxOcc int
	AvgOcc float64
}

// Stats returns cumulative counters for the pipe.
func (p *Pipe[T]) Stats() PipeStats {
	avg := 0.0
	if p.occTicks > 0 {
		avg = float64(p.sumOcc) / float64(p.occTicks)
	}
	return PipeStats{Name: p.name, Pushes: p.pushes, Pops: p.pops, MaxOcc: p.maxOcc, AvgOcc: avg}
}
