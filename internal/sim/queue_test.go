package sim

import "testing"

func TestQueueUnbounded(t *testing.T) {
	q := NewQueue[int](0)
	if !q.Empty() || q.Len() != 0 || q.Full() {
		t.Fatal("fresh queue not empty")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue succeeded")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue succeeded")
	}
	for i := 0; i < 100; i++ {
		if !q.Push(i) {
			t.Fatalf("unbounded Push(%d) refused", i)
		}
	}
	if q.Len() != 100 || q.Full() {
		t.Fatalf("len=%d full=%v", q.Len(), q.Full())
	}
	// FIFO order.
	if v, ok := q.Peek(); !ok || v != 0 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop %d = %d,%v", i, v, ok)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestQueueBounded(t *testing.T) {
	q := NewQueue[string](2)
	if !q.Push("a") || !q.Push("b") {
		t.Fatal("pushes within capacity refused")
	}
	if !q.Full() {
		t.Fatal("queue at capacity not Full")
	}
	if q.Push("c") {
		t.Fatal("Push beyond capacity accepted")
	}
	if v, _ := q.Pop(); v != "a" {
		t.Fatalf("Pop = %q", v)
	}
	// Capacity freed: push works again.
	if !q.Push("c") {
		t.Fatal("Push after Pop refused")
	}
}

func TestQueueDrain(t *testing.T) {
	q := NewQueue[int](0)
	for i := 1; i <= 3; i++ {
		q.Push(i)
	}
	got := q.Drain()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Drain = %v", got)
	}
	if !q.Empty() {
		t.Fatal("queue not empty after Drain")
	}
	if got := q.Drain(); len(got) != 0 {
		t.Fatalf("second Drain = %v", got)
	}
}
