package core

import "fmt"

// OrderChecker validates that an observed stream of completions satisfies
// an ordering model. Scopes are the model's ordering domains: the single
// domain for FullyOrdered, the thread for ThreadOrdered, the transaction
// ID for IDOrdered. Experiments E3/E4 use it to prove the fabric honours
// each socket's contract.
type OrderChecker struct {
	Model    OrderingModel
	inflight map[int][]uint64 // scope -> FIFO of outstanding seqs
	checked  uint64
	reorders uint64 // legal cross-scope reorders observed (informative)
	lastSeq  uint64
	haveLast bool
}

// NewOrderChecker returns a checker for the given model.
func NewOrderChecker(model OrderingModel) *OrderChecker {
	return &OrderChecker{Model: model, inflight: make(map[int][]uint64)}
}

func (c *OrderChecker) scope(id int) int {
	if c.Model == FullyOrdered {
		return 0
	}
	return id
}

// Issued records that transaction seq entered scope id.
func (c *OrderChecker) Issued(id int, seq uint64) {
	s := c.scope(id)
	c.inflight[s] = append(c.inflight[s], seq)
}

// Completed records a completion and returns an error if it violates the
// model (i.e., it is not the oldest outstanding transaction in its scope).
func (c *OrderChecker) Completed(id int, seq uint64) error {
	s := c.scope(id)
	q := c.inflight[s]
	if len(q) == 0 {
		return fmt.Errorf("core: completion seq=%d in scope %d with nothing outstanding", seq, s)
	}
	if q[0] != seq {
		return fmt.Errorf("core: %s violation in scope %d: completed seq=%d, oldest outstanding seq=%d",
			c.Model, s, seq, q[0])
	}
	c.inflight[s] = q[1:]
	c.checked++
	if c.haveLast && seq < c.lastSeq {
		c.reorders++ // out-of-order across scopes: legal, but worth counting
	}
	c.lastSeq, c.haveLast = seq, true
	return nil
}

// Outstanding returns the number of issued-but-not-completed transactions.
func (c *OrderChecker) Outstanding() int {
	n := 0
	for _, q := range c.inflight {
		n += len(q)
	}
	return n
}

// Checked returns the number of completions validated.
func (c *OrderChecker) Checked() uint64 { return c.checked }

// CrossScopeReorders returns how many completions arrived with a global
// sequence number lower than their predecessor — evidence of legal
// out-of-order behaviour across threads/IDs.
func (c *OrderChecker) CrossScopeReorders() uint64 { return c.reorders }
