package core

import (
	"testing"
	"testing/quick"

	"gonoc/internal/noctypes"
)

func TestTagPolicyFullyOrdered(t *testing.T) {
	p := NewTagPolicy(FullyOrdered, 1)
	for i := 0; i < 10; i++ {
		tag, ok := p.Map(i) // protoID irrelevant
		if !ok || tag != 0 {
			t.Fatalf("FullyOrdered Map(%d) = %v,%v, want 0,true", i, tag, ok)
		}
	}
}

func TestTagPolicyThreadOrdered(t *testing.T) {
	p := NewTagPolicy(ThreadOrdered, 4)
	for th := 0; th < 4; th++ {
		tag, ok := p.Map(th)
		if !ok || tag != noctypes.Tag(th) {
			t.Fatalf("thread %d -> %v,%v, want tag%d,true", th, tag, ok, th)
		}
	}
	if _, ok := p.Map(4); ok {
		t.Fatal("thread beyond provisioned count accepted")
	}
	if _, ok := p.Map(-1); ok {
		t.Fatal("negative thread accepted")
	}
}

func TestTagPolicyIDOrderedReuse(t *testing.T) {
	p := NewTagPolicy(IDOrdered, 2)
	t1, ok := p.Map(100)
	if !ok {
		t.Fatal("first Map failed")
	}
	t2, ok := p.Map(100) // same ID: must reuse the same tag
	if !ok || t2 != t1 {
		t.Fatalf("same ID mapped to %v then %v", t1, t2)
	}
	t3, ok := p.Map(200) // different ID: must get a different tag
	if !ok || t3 == t1 {
		t.Fatalf("distinct IDs share tag %v", t3)
	}
	// Both tags busy: a third ID must be refused (backpressure).
	if _, ok := p.Map(300); ok {
		t.Fatal("third ID accepted with all tags busy")
	}
	// Release one of ID 100's two transactions: mapping persists.
	p.Release(t1)
	if _, ok := p.Map(300); ok {
		t.Fatal("ID 300 accepted while tags still held")
	}
	p.Release(t1) // refcount hits zero; tag frees
	t4, ok := p.Map(300)
	if !ok || t4 != t1 {
		t.Fatalf("freed tag not reused: got %v,%v", t4, ok)
	}
}

func TestTagPolicyReleasePanics(t *testing.T) {
	p := NewTagPolicy(IDOrdered, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of unallocated tag did not panic")
		}
	}()
	p.Release(0)
}

func TestTagPolicyProtoIDFor(t *testing.T) {
	p := NewTagPolicy(IDOrdered, 2)
	tag, _ := p.Map(77)
	if got := p.ProtoIDFor(tag); got != 77 {
		t.Fatalf("ProtoIDFor(%v) = %d, want 77", tag, got)
	}
	pt := NewTagPolicy(ThreadOrdered, 4)
	if got := pt.ProtoIDFor(3); got != 3 {
		t.Fatalf("thread ProtoIDFor(3) = %d", got)
	}
}

// Property: under any interleaving of Map/Release, two live protocol IDs
// never share a tag, and the number of live tags never exceeds NumTags.
func TestQuickTagPolicyNoAliasing(t *testing.T) {
	prop := func(ops []uint16, numTagsRaw uint8) bool {
		numTags := int(numTagsRaw%6) + 1
		p := NewTagPolicy(IDOrdered, numTags)
		type live struct {
			id  int
			tag noctypes.Tag
		}
		var lives []live
		for _, op := range ops {
			id := int(op % 8)
			if op%3 == 0 && len(lives) > 0 {
				// release a random-ish live transaction
				i := int(op) % len(lives)
				p.Release(lives[i].tag)
				lives = append(lives[:i], lives[i+1:]...)
				continue
			}
			if tag, ok := p.Map(id); ok {
				lives = append(lives, live{id, tag})
			}
		}
		// Check invariant: same tag => same ID.
		tagOwner := map[noctypes.Tag]int{}
		for _, l := range lives {
			if owner, seen := tagOwner[l.tag]; seen && owner != l.id {
				return false
			}
			tagOwner[l.tag] = l.id
		}
		return len(tagOwner) <= numTags && p.InUse() == len(tagOwner)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderingModelString(t *testing.T) {
	for _, m := range []OrderingModel{FullyOrdered, ThreadOrdered, IDOrdered} {
		if m.String() == "" {
			t.Errorf("empty String for model %d", m)
		}
	}
}
