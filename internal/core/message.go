package core

import (
	"fmt"

	"gonoc/internal/noctypes"
)

// Request is the transaction-layer request primitive: what a master-side
// NIU produces from a socket transaction and what a slave-side NIU
// executes against its target.
//
// Src is the paper's MstAddr, Dst its SlvAddr, Tag its Tag. These three
// fields — plus Priority and the service/lock bits — are the only parts
// the transport layer ever sees (copied into the packet header); the rest
// travels as opaque payload bytes.
type Request struct {
	Cmd   Cmd
	Addr  uint64 // byte address within the global map
	Size  uint8  // bytes per beat (1, 2, 4, 8)
	Len   uint16 // number of beats (>= 1)
	Burst BurstKind

	Data []byte // write payload, Len*Size bytes (writes only)
	BE   []byte // optional per-byte write enables, same length as Data

	Exclusive bool // NoC service bit: AXI exclusive / OCP lazy sync
	Locked    bool // legacy lock sequence member (transport-visible)
	Unlock    bool // last member of a legacy lock sequence
	Posted    bool // no response expected (must match Cmd.ExpectsResponse)

	Src      noctypes.NodeID // MstAddr: issuing NIU
	Dst      noctypes.NodeID // SlvAddr: target NIU
	Tag      noctypes.Tag
	Priority noctypes.Priority

	// Seq is a per-master issue sequence number used by ordering checks
	// and statistics. It is not part of the wire format.
	Seq uint64
}

// Bytes returns the total data bytes moved by the transaction.
func (r *Request) Bytes() int { return int(r.Len) * int(r.Size) }

// Validate checks internal consistency of the request.
func (r *Request) Validate() error {
	if !r.Cmd.Valid() {
		return fmt.Errorf("core: invalid command %d", uint8(r.Cmd))
	}
	if !r.Burst.Valid() {
		return fmt.Errorf("core: invalid burst kind %d", uint8(r.Burst))
	}
	switch r.Size {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("core: invalid beat size %d", r.Size)
	}
	if r.Len == 0 {
		return fmt.Errorf("core: burst length must be >= 1")
	}
	if r.Cmd.IsWrite() {
		if len(r.Data) != r.Bytes() {
			return fmt.Errorf("core: %s carries %d data bytes, want %d", r.Cmd, len(r.Data), r.Bytes())
		}
		if r.BE != nil && len(r.BE) != len(r.Data) {
			return fmt.Errorf("core: byte-enable length %d != data length %d", len(r.BE), len(r.Data))
		}
	} else if len(r.Data) != 0 {
		return fmt.Errorf("core: %s must not carry data", r.Cmd)
	}
	if r.Posted != !r.Cmd.ExpectsResponse() {
		return fmt.Errorf("core: Posted=%v inconsistent with %s", r.Posted, r.Cmd)
	}
	if r.Exclusive && !(r.Cmd == CmdReadEx || r.Cmd == CmdWriteEx) {
		return fmt.Errorf("core: Exclusive bit set on %s", r.Cmd)
	}
	if (r.Cmd == CmdReadEx || r.Cmd == CmdWriteEx) && !r.Exclusive {
		return fmt.Errorf("core: %s requires Exclusive bit", r.Cmd)
	}
	if r.Unlock && !r.Locked {
		return fmt.Errorf("core: Unlock without Locked")
	}
	return nil
}

// String renders a compact description of the request.
func (r *Request) String() string {
	return fmt.Sprintf("%s@%#x len=%d size=%d %s %s->%s %s",
		r.Cmd, r.Addr, r.Len, r.Size, r.Burst, r.Src, r.Dst, r.Tag)
}

// Response is the transaction-layer response primitive, routed back from
// the slave-side NIU to the master-side NIU using the request's MstAddr as
// the packet destination.
type Response struct {
	Status Status
	Data   []byte // read data (reads only)

	Src      noctypes.NodeID // responding NIU (the slave)
	Dst      noctypes.NodeID // the original MstAddr
	Tag      noctypes.Tag
	Priority noctypes.Priority

	// Seq echoes the request's Seq for ordering checks; not wire-visible
	// beyond the payload echo.
	Seq uint64
}

// Validate checks internal consistency of the response.
func (p *Response) Validate() error {
	if !p.Status.Valid() {
		return fmt.Errorf("core: invalid status %d", uint8(p.Status))
	}
	return nil
}

// String renders a compact description of the response.
func (p *Response) String() string {
	return fmt.Sprintf("RSP %s %dB %s->%s %s", p.Status, len(p.Data), p.Src, p.Dst, p.Tag)
}
