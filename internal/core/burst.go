package core

// BeatAddr returns the byte address of beat i (0-based) of a burst, for
// all supported burst kinds. Target models use it to execute multi-beat
// transactions against backing storage.
//
//   - BurstIncr: addr, addr+size, addr+2*size, ...
//   - BurstWrap: increments but wraps within an aligned window of
//     len*size bytes containing the start address (AHB WRAP4/8/16,
//     AXI WRAP semantics).
//   - BurstFixed: every beat hits the start address (FIFO register).
func BeatAddr(burst BurstKind, addr uint64, size uint8, length uint16, i int) uint64 {
	s := uint64(size)
	switch burst {
	case BurstFixed:
		return addr
	case BurstWrap:
		window := uint64(length) * s
		if window == 0 || window&(window-1) != 0 {
			// Non-power-of-two window: degrade to INCR, matching what
			// real fabrics do with illegal wrap lengths.
			return addr + uint64(i)*s
		}
		base := addr &^ (window - 1)
		return base + (addr+uint64(i)*s-base)%window
	default: // BurstIncr
		return addr + uint64(i)*s
	}
}

// BurstSpan returns the inclusive low and exclusive high byte addresses a
// burst touches (used by exclusive-monitor overlap checks).
func BurstSpan(burst BurstKind, addr uint64, size uint8, length uint16) (lo, hi uint64) {
	lo, hi = addr, addr
	for i := 0; i < int(length); i++ {
		a := BeatAddr(burst, addr, size, length, i)
		if a < lo {
			lo = a
		}
		if a+uint64(size) > hi {
			hi = a + uint64(size)
		}
	}
	return lo, hi
}
