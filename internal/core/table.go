package core

import (
	"fmt"

	"gonoc/internal/noctypes"
)

// TableConfig sizes an NIU's transaction state table — the paper's
// "standard NIU state lookup tables (which track for example that a Load
// request is waiting for a response)".
//
// MaxOutstanding and MaxTargets are the two scaling knobs §3 names: an NIU
// may support "one or many simultaneously outstanding transactions and/or
// targets, scaling their gate count to their expected performance".
type TableConfig struct {
	// MaxOutstanding bounds simultaneously in-flight transactions.
	MaxOutstanding int
	// MaxTargets bounds distinct slave nodes with in-flight transactions.
	// 1 means the NIU blocks when the socket switches targets — the
	// cheapest way to keep a fully-ordered socket correct without a
	// reorder buffer.
	MaxTargets int
}

// Validate checks the configuration.
func (c TableConfig) Validate() error {
	if c.MaxOutstanding <= 0 {
		return fmt.Errorf("core: MaxOutstanding must be >= 1, got %d", c.MaxOutstanding)
	}
	if c.MaxTargets <= 0 {
		return fmt.Errorf("core: MaxTargets must be >= 1, got %d", c.MaxTargets)
	}
	return nil
}

// Entry is one outstanding transaction tracked by the NIU.
type Entry struct {
	Tag   noctypes.Tag
	Dst   noctypes.NodeID
	Cmd   Cmd
	Seq   uint64
	Issue int64 // cycle of issue, for latency statistics
	Meta  any   // NIU-private socket context (AXI ID, OCP thread, ...)
}

// Table tracks outstanding transactions with per-tag FIFO order. The
// transport layer guarantees per-(MstAddr,Tag) in-order delivery, so the
// oldest entry for a tag is, by construction, the one a response for that
// tag belongs to.
type Table struct {
	cfg     TableConfig
	perTag  map[noctypes.Tag][]*Entry
	targets map[noctypes.NodeID]int
	count   int
	peak    int
	issued  uint64
}

// NewTable returns an empty table; cfg must validate.
func NewTable(cfg TableConfig) *Table {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Table{
		cfg:     cfg,
		perTag:  make(map[noctypes.Tag][]*Entry),
		targets: make(map[noctypes.NodeID]int),
	}
}

// Config returns the table's configuration.
func (t *Table) Config() TableConfig { return t.cfg }

// CanIssue reports whether a transaction with the given tag and target can
// be accepted now (capacity and target-set checks). Refusal means the NIU
// back-pressures its socket.
//
// Beyond the sizing limits, CanIssue enforces the same-tag/same-target
// hazard rule: the fabric only guarantees per-(MstAddr,Tag) order along
// one path, so a tag with transactions in flight to slave A must drain
// before it may address slave B. This is the NoC materialization of the
// AXI "same ID to different slaves" stall, and it is what keeps a cheap
// fully-ordered (single-tag) NIU correct with any MaxTargets setting.
func (t *Table) CanIssue(tag noctypes.Tag, dst noctypes.NodeID) bool {
	if t.count >= t.cfg.MaxOutstanding {
		return false
	}
	if q := t.perTag[tag]; len(q) > 0 && q[len(q)-1].Dst != dst {
		return false
	}
	if _, known := t.targets[dst]; !known && len(t.targets) >= t.cfg.MaxTargets {
		return false
	}
	return true
}

// Issue records a new outstanding transaction. It panics if CanIssue is
// false — callers must check first (the check/act split mirrors the
// ready/valid handshake of the hardware).
func (t *Table) Issue(e *Entry) {
	if !t.CanIssue(e.Tag, e.Dst) {
		panic(fmt.Sprintf("core: Issue without CanIssue (tag=%v dst=%v count=%d)", e.Tag, e.Dst, t.count))
	}
	t.perTag[e.Tag] = append(t.perTag[e.Tag], e)
	t.targets[e.Dst]++
	t.count++
	t.issued++
	if t.count > t.peak {
		t.peak = t.count
	}
}

// Complete retires the oldest outstanding transaction for tag and returns
// its entry. It returns an error if no transaction with that tag is
// outstanding — which, given transport per-tag ordering, indicates a
// protocol violation somewhere upstream.
func (t *Table) Complete(tag noctypes.Tag) (*Entry, error) {
	q := t.perTag[tag]
	if len(q) == 0 {
		return nil, fmt.Errorf("core: response for %v with no outstanding transaction", tag)
	}
	e := q[0]
	if len(q) == 1 {
		delete(t.perTag, tag)
	} else {
		t.perTag[tag] = q[1:]
	}
	t.targets[e.Dst]--
	if t.targets[e.Dst] == 0 {
		delete(t.targets, e.Dst)
	}
	t.count--
	return e, nil
}

// Outstanding returns the number of in-flight transactions.
func (t *Table) Outstanding() int { return t.count }

// OutstandingForTag returns in-flight transactions for one tag.
func (t *Table) OutstandingForTag(tag noctypes.Tag) int { return len(t.perTag[tag]) }

// OldestForTag returns the entry a response for tag will retire, or nil.
func (t *Table) OldestForTag(tag noctypes.Tag) *Entry {
	if q := t.perTag[tag]; len(q) > 0 {
		return q[0]
	}
	return nil
}

// ActiveTargets returns the number of distinct targets in flight.
func (t *Table) ActiveTargets() int { return len(t.targets) }

// Peak returns the highest simultaneous occupancy observed.
func (t *Table) Peak() int { return t.peak }

// Issued returns the cumulative number of issued transactions.
func (t *Table) Issued() uint64 { return t.issued }
