package core

import "testing"

func TestBeatAddrIncr(t *testing.T) {
	for i := 0; i < 4; i++ {
		if got := BeatAddr(BurstIncr, 0x100, 4, 4, i); got != uint64(0x100+4*i) {
			t.Fatalf("INCR beat %d = %#x", i, got)
		}
	}
}

func TestBeatAddrFixed(t *testing.T) {
	for i := 0; i < 8; i++ {
		if got := BeatAddr(BurstFixed, 0x40, 8, 8, i); got != 0x40 {
			t.Fatalf("FIXED beat %d = %#x", i, got)
		}
	}
}

func TestBeatAddrWrap(t *testing.T) {
	// WRAP4, 4-byte beats starting at 0x108 in a 16-byte window [0x100,0x110):
	// 0x108, 0x10C, 0x100, 0x104 (AHB WRAP4 semantics).
	want := []uint64{0x108, 0x10C, 0x100, 0x104}
	for i, w := range want {
		if got := BeatAddr(BurstWrap, 0x108, 4, 4, i); got != w {
			t.Fatalf("WRAP beat %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestBeatAddrWrapAligned(t *testing.T) {
	// Start aligned: wrap never triggers within the burst.
	for i := 0; i < 4; i++ {
		if got := BeatAddr(BurstWrap, 0x100, 4, 4, i); got != uint64(0x100+4*i) {
			t.Fatalf("aligned WRAP beat %d = %#x", i, got)
		}
	}
}

func TestBeatAddrWrapNonPow2DegradesToIncr(t *testing.T) {
	// 3-beat wrap window (12 bytes) is not a power of two: INCR fallback.
	for i := 0; i < 3; i++ {
		if got := BeatAddr(BurstWrap, 0x100, 4, 3, i); got != uint64(0x100+4*i) {
			t.Fatalf("non-pow2 WRAP beat %d = %#x", i, got)
		}
	}
}

func TestBurstSpan(t *testing.T) {
	lo, hi := BurstSpan(BurstIncr, 0x100, 4, 4)
	if lo != 0x100 || hi != 0x110 {
		t.Fatalf("INCR span = [%#x,%#x)", lo, hi)
	}
	lo, hi = BurstSpan(BurstWrap, 0x108, 4, 4)
	if lo != 0x100 || hi != 0x110 {
		t.Fatalf("WRAP span = [%#x,%#x)", lo, hi)
	}
	lo, hi = BurstSpan(BurstFixed, 0x100, 8, 16)
	if lo != 0x100 || hi != 0x108 {
		t.Fatalf("FIXED span = [%#x,%#x)", lo, hi)
	}
}
