// Package core implements the paper's primary contribution: the VC-neutral
// NoC transaction layer. It defines the communication primitives available
// to IP blocks plugged into the NoC (requests, responses, the
// SlvAddr/MstAddr/Tag header triple), the ordering models that adapt those
// primitives to fully-ordered (AHB, PVCI, BVCI), thread-ordered (OCP) and
// ID-ordered (AXI, AVCI) sockets, the NIU transaction state tables, the
// address map, and the "NoC services" mechanism (exclusive access as a
// single user-defined packet bit plus NIU state).
//
// Nothing in this package knows how packets are switched or clocked:
// the transaction layer is transport-unaware, mirroring the paper's layer
// independence.
package core

import "fmt"

// Cmd is a transaction-layer command.
type Cmd uint8

// Transaction-layer command set. The first four are the portable core;
// the exclusive pair implements AXI "exclusive access" / OCP "lazy
// synchronization" as a NoC service; the locked pair models the legacy
// AHB/VCI READEX-LOCK style that (per the paper, §3) unavoidably impacts
// the transport layer.
const (
	CmdRead      Cmd = iota // read burst
	CmdWrite                // non-posted write burst (response expected)
	CmdWritePost            // posted write burst (no response; OCP-style)
	CmdReadEx               // exclusive read (AXI excl. read / OCP ReadLinked)
	CmdWriteEx              // exclusive write (AXI excl. write / OCP WriteConditional)
	CmdReadLock             // legacy locked read (AHB HLOCK / VCI READEX)
	CmdWriteUnlk            // write that releases a legacy lock sequence
	numCmds
)

// String renders a Cmd.
func (c Cmd) String() string {
	switch c {
	case CmdRead:
		return "READ"
	case CmdWrite:
		return "WRITE"
	case CmdWritePost:
		return "WRITEPOST"
	case CmdReadEx:
		return "READEX"
	case CmdWriteEx:
		return "WRITEEX"
	case CmdReadLock:
		return "READLOCK"
	case CmdWriteUnlk:
		return "WRITEUNLK"
	default:
		return fmt.Sprintf("CMD(%d)", uint8(c))
	}
}

// Valid reports whether c is a defined command.
func (c Cmd) Valid() bool { return c < numCmds }

// IsRead reports whether the command returns data.
func (c Cmd) IsRead() bool { return c == CmdRead || c == CmdReadEx || c == CmdReadLock }

// IsWrite reports whether the command carries write data.
func (c Cmd) IsWrite() bool {
	return c == CmdWrite || c == CmdWritePost || c == CmdWriteEx || c == CmdWriteUnlk
}

// ExpectsResponse reports whether a response packet is returned.
func (c Cmd) ExpectsResponse() bool { return c != CmdWritePost }

// Status is a transaction-layer response status.
type Status uint8

// Response statuses.
const (
	StOK             Status = iota // success
	StExOK                         // exclusive access succeeded (write took effect)
	StExFail                       // exclusive access failed (write did not take effect)
	StErrDecode                    // no target at address
	StErrSlave                     // target signalled an error
	StErrUnsupported               // target/NIU cannot perform the command
	numStatuses
)

// String renders a Status.
func (s Status) String() string {
	switch s {
	case StOK:
		return "OK"
	case StExOK:
		return "EXOK"
	case StExFail:
		return "EXFAIL"
	case StErrDecode:
		return "ERR_DECODE"
	case StErrSlave:
		return "ERR_SLAVE"
	case StErrUnsupported:
		return "ERR_UNSUPPORTED"
	default:
		return fmt.Sprintf("STATUS(%d)", uint8(s))
	}
}

// Valid reports whether s is a defined status.
func (s Status) Valid() bool { return s < numStatuses }

// OK reports whether the status indicates the transaction succeeded
// (including a successful exclusive).
func (s Status) OK() bool { return s == StOK || s == StExOK }

// BurstKind describes address progression across burst beats.
type BurstKind uint8

// Burst kinds, covering the union of the sockets' burst vocabularies:
// AHB INCR/WRAP, AXI INCR/WRAP/FIXED, OCP INCR/WRAP/STRM.
const (
	BurstIncr  BurstKind = iota // incrementing addresses
	BurstWrap                   // wrapping at Len*Size boundary
	BurstFixed                  // same address every beat (FIFO port)
	numBursts
)

// String renders a BurstKind.
func (b BurstKind) String() string {
	switch b {
	case BurstIncr:
		return "INCR"
	case BurstWrap:
		return "WRAP"
	case BurstFixed:
		return "FIXED"
	default:
		return fmt.Sprintf("BURST(%d)", uint8(b))
	}
}

// Valid reports whether b is a defined burst kind.
func (b BurstKind) Valid() bool { return b < numBursts }
