package core

import (
	"testing"

	"gonoc/internal/noctypes"
)

func TestAddressMapDecode(t *testing.T) {
	m := NewAddressMap()
	m.MustAdd("ram", 0x0000, 0x1000, 10)
	m.MustAdd("rom", 0x2000, 0x800, 11)
	m.MustAdd("regs", 0xF000, 0x100, 12)
	m.Freeze()

	cases := []struct {
		addr   uint64
		node   noctypes.NodeID
		offset uint64
		ok     bool
	}{
		{0x0000, 10, 0, true},
		{0x0FFF, 10, 0xFFF, true},
		{0x1000, noctypes.NodeInvalid, 0, false}, // hole
		{0x2000, 11, 0, true},
		{0x27FF, 11, 0x7FF, true},
		{0x2800, noctypes.NodeInvalid, 0, false},
		{0xF080, 12, 0x80, true},
		{0xFFFFFFFF, noctypes.NodeInvalid, 0, false},
	}
	for _, c := range cases {
		node, off, ok := m.Decode(c.addr)
		if node != c.node || off != c.offset || ok != c.ok {
			t.Errorf("Decode(%#x) = (%v,%#x,%v), want (%v,%#x,%v)",
				c.addr, node, off, ok, c.node, c.offset, c.ok)
		}
	}
}

func TestAddressMapDecodeUnfrozen(t *testing.T) {
	m := NewAddressMap()
	m.MustAdd("a", 0x100, 0x100, 1)
	if node, off, ok := m.Decode(0x180); !ok || node != 1 || off != 0x80 {
		t.Fatalf("unfrozen Decode = (%v,%#x,%v)", node, off, ok)
	}
}

func TestAddressMapOverlap(t *testing.T) {
	m := NewAddressMap()
	m.MustAdd("a", 0x1000, 0x1000, 1)
	cases := []struct{ base, size uint64 }{
		{0x1800, 0x100},  // inside
		{0x0800, 0x1000}, // straddles start
		{0x1FFF, 0x10},   // straddles end
		{0x1000, 0x1000}, // identical
	}
	for _, c := range cases {
		if err := m.Add("b", c.base, c.size, 2); err == nil {
			t.Errorf("Add(%#x,%#x) accepted overlapping region", c.base, c.size)
		}
	}
	// Adjacent regions are fine.
	if err := m.Add("c", 0x2000, 0x100, 3); err != nil {
		t.Errorf("adjacent region rejected: %v", err)
	}
}

func TestAddressMapBadRegions(t *testing.T) {
	m := NewAddressMap()
	if err := m.Add("zero", 0x100, 0, 1); err == nil {
		t.Error("zero-size region accepted")
	}
	if err := m.Add("wrap", ^uint64(0)-10, 100, 1); err == nil {
		t.Error("wrapping region accepted")
	}
	m.Freeze()
	if err := m.Add("late", 0, 0x10, 1); err == nil {
		t.Error("Add after Freeze accepted")
	}
}

func TestAddressMapNodeFor(t *testing.T) {
	m := NewAddressMap()
	m.MustAdd("ram", 0, 0x100, 42)
	if n, ok := m.NodeFor("ram"); !ok || n != 42 {
		t.Fatalf("NodeFor(ram) = %v,%v", n, ok)
	}
	if _, ok := m.NodeFor("nope"); ok {
		t.Fatal("NodeFor(nope) found something")
	}
	if len(m.Regions()) != 1 {
		t.Fatal("Regions() wrong length")
	}
}
