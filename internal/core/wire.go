package core

import (
	"encoding/binary"
	"fmt"

	"gonoc/internal/noctypes"
)

// Wire format. Requests and responses are genuinely serialized to bytes at
// the NIU boundary: the transport layer carries only these opaque payloads
// plus the header triple. The format is little-endian and versioned by the
// leading magic nibble so decode errors are loud.

const (
	reqMagic  = 0xA0
	rspMagic  = 0xB0
	reqHdrLen = 16
	rspHdrLen = 16
)

// Request payload flags.
const (
	flagExclusive = 1 << 0
	flagLocked    = 1 << 1
	flagUnlock    = 1 << 2
	flagPosted    = 1 << 3
	flagHasBE     = 1 << 4
)

// Response payload flags: none currently; reserved.

// EncodeRequest serializes a request into transport payload bytes.
func EncodeRequest(r *Request) []byte {
	n := reqHdrLen + len(r.Data)
	if r.BE != nil {
		n += len(r.BE)
	}
	buf := make([]byte, n)
	buf[0] = reqMagic | byte(r.Cmd)
	var fl byte
	if r.Exclusive {
		fl |= flagExclusive
	}
	if r.Locked {
		fl |= flagLocked
	}
	if r.Unlock {
		fl |= flagUnlock
	}
	if r.Posted {
		fl |= flagPosted
	}
	if r.BE != nil {
		fl |= flagHasBE
	}
	buf[1] = fl
	buf[2] = r.Size
	buf[3] = byte(r.Burst)
	binary.LittleEndian.PutUint16(buf[4:6], r.Len)
	binary.LittleEndian.PutUint16(buf[6:8], uint16(r.Priority))
	binary.LittleEndian.PutUint64(buf[8:16], r.Addr)
	copy(buf[reqHdrLen:], r.Data)
	if r.BE != nil {
		copy(buf[reqHdrLen+len(r.Data):], r.BE)
	}
	return buf
}

// DecodeRequest parses transport payload bytes into a request. Header
// fields carried outside the payload (Src, Dst, Tag, Seq) must be filled
// in by the caller from the packet header.
func DecodeRequest(buf []byte) (*Request, error) {
	if len(buf) < reqHdrLen {
		return nil, fmt.Errorf("core: request payload too short (%d bytes)", len(buf))
	}
	if buf[0]&0xF0 != reqMagic {
		return nil, fmt.Errorf("core: bad request magic %#x", buf[0])
	}
	r := &Request{
		Cmd:   Cmd(buf[0] & 0x0F),
		Size:  buf[2],
		Burst: BurstKind(buf[3]),
		Len:   binary.LittleEndian.Uint16(buf[4:6]),
	}
	fl := buf[1]
	r.Exclusive = fl&flagExclusive != 0
	r.Locked = fl&flagLocked != 0
	r.Unlock = fl&flagUnlock != 0
	r.Posted = fl&flagPosted != 0
	r.Priority = noctypes.Priority(binary.LittleEndian.Uint16(buf[6:8]))
	r.Addr = binary.LittleEndian.Uint64(buf[8:16])

	rest := buf[reqHdrLen:]
	if r.Cmd.IsWrite() {
		want := r.Bytes()
		if fl&flagHasBE != 0 {
			if len(rest) != 2*want {
				return nil, fmt.Errorf("core: write payload %d bytes, want %d data + %d BE", len(rest), want, want)
			}
			r.Data = append([]byte(nil), rest[:want]...)
			r.BE = append([]byte(nil), rest[want:]...)
		} else {
			if len(rest) != want {
				return nil, fmt.Errorf("core: write payload %d bytes, want %d", len(rest), want)
			}
			r.Data = append([]byte(nil), rest...)
		}
	} else if len(rest) != 0 {
		return nil, fmt.Errorf("core: read request carries %d payload bytes", len(rest))
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// EncodeResponse serializes a response into transport payload bytes.
func EncodeResponse(p *Response) []byte {
	buf := make([]byte, rspHdrLen+len(p.Data))
	buf[0] = rspMagic | byte(p.Status)
	binary.LittleEndian.PutUint32(buf[2:6], uint32(len(p.Data)))
	// Bytes 6..16 are reserved. Note deliberately absent: no sequence
	// number travels on the wire — per-(MstAddr,Tag) FIFO ordering lets the
	// master NIU recover request identity from its state table, which is
	// exactly the paper's low-gate-count ordering argument.
	copy(buf[rspHdrLen:], p.Data)
	return buf
}

// DecodeResponse parses transport payload bytes into a response.
func DecodeResponse(buf []byte) (*Response, error) {
	if len(buf) < rspHdrLen {
		return nil, fmt.Errorf("core: response payload too short (%d bytes)", len(buf))
	}
	if buf[0]&0xF0 != rspMagic {
		return nil, fmt.Errorf("core: bad response magic %#x", buf[0])
	}
	p := &Response{Status: Status(buf[0] & 0x0F)}
	n := binary.LittleEndian.Uint32(buf[2:6])
	if int(n) != len(buf)-rspHdrLen {
		return nil, fmt.Errorf("core: response declares %d data bytes, carries %d", n, len(buf)-rspHdrLen)
	}
	if n > 0 {
		p.Data = append([]byte(nil), buf[rspHdrLen:]...)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
