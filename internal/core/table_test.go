package core

import (
	"testing"

	"gonoc/internal/noctypes"
)

func TestTableIssueComplete(t *testing.T) {
	tb := NewTable(TableConfig{MaxOutstanding: 4, MaxTargets: 2})
	if !tb.CanIssue(0, 10) {
		t.Fatal("empty table refuses issue")
	}
	tb.Issue(&Entry{Tag: 0, Dst: 10, Cmd: CmdRead, Seq: 1})
	tb.Issue(&Entry{Tag: 0, Dst: 10, Cmd: CmdRead, Seq: 2})
	if tb.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d", tb.Outstanding())
	}
	e, err := tb.Complete(0)
	if err != nil || e.Seq != 1 {
		t.Fatalf("Complete returned seq %d err %v, want oldest (1)", e.Seq, err)
	}
	e, err = tb.Complete(0)
	if err != nil || e.Seq != 2 {
		t.Fatalf("second Complete: %v %v", e, err)
	}
	if _, err := tb.Complete(0); err == nil {
		t.Fatal("Complete on empty tag succeeded")
	}
}

func TestTableMaxOutstanding(t *testing.T) {
	tb := NewTable(TableConfig{MaxOutstanding: 2, MaxTargets: 8})
	tb.Issue(&Entry{Tag: 0, Dst: 1})
	tb.Issue(&Entry{Tag: 1, Dst: 2})
	if tb.CanIssue(2, 3) {
		t.Fatal("table over capacity accepted")
	}
	if _, err := tb.Complete(0); err != nil {
		t.Fatal(err)
	}
	if !tb.CanIssue(2, 3) {
		t.Fatal("capacity not restored after Complete")
	}
}

func TestTableMaxTargets(t *testing.T) {
	tb := NewTable(TableConfig{MaxOutstanding: 8, MaxTargets: 1})
	tb.Issue(&Entry{Tag: 0, Dst: 10, Seq: 1})
	// Same target: fine.
	if !tb.CanIssue(0, 10) {
		t.Fatal("same-target issue refused")
	}
	// Different target: must be refused while node 10 is in flight.
	if tb.CanIssue(0, 11) {
		t.Fatal("second target accepted with MaxTargets=1")
	}
	tb.Issue(&Entry{Tag: 0, Dst: 10, Seq: 2})
	if _, err := tb.Complete(0); err != nil {
		t.Fatal(err)
	}
	// One txn to node 10 still in flight: still blocked.
	if tb.CanIssue(0, 11) {
		t.Fatal("target switch allowed while old target in flight")
	}
	if _, err := tb.Complete(0); err != nil {
		t.Fatal(err)
	}
	if !tb.CanIssue(0, 11) {
		t.Fatal("target switch blocked after drain")
	}
}

func TestTableIssueWithoutCanIssuePanics(t *testing.T) {
	tb := NewTable(TableConfig{MaxOutstanding: 1, MaxTargets: 1})
	tb.Issue(&Entry{Tag: 0, Dst: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Issue beyond capacity did not panic")
		}
	}()
	tb.Issue(&Entry{Tag: 0, Dst: 1})
}

func TestTablePerTagFIFO(t *testing.T) {
	tb := NewTable(TableConfig{MaxOutstanding: 8, MaxTargets: 8})
	tb.Issue(&Entry{Tag: 1, Dst: 1, Seq: 100})
	tb.Issue(&Entry{Tag: 2, Dst: 2, Seq: 200})
	tb.Issue(&Entry{Tag: 1, Dst: 1, Seq: 101})
	// Tag 2 completes out of global order — allowed, distinct tag.
	if e, err := tb.Complete(2); err != nil || e.Seq != 200 {
		t.Fatalf("Complete(2): %+v, %v", e, err)
	}
	if e, err := tb.Complete(1); err != nil || e.Seq != 100 {
		t.Fatalf("Complete(1): %+v, %v (per-tag FIFO broken)", e, err)
	}
	if e := tb.OldestForTag(1); e == nil || e.Seq != 101 {
		t.Fatalf("OldestForTag(1) = %+v", e)
	}
	if tb.OldestForTag(9) != nil {
		t.Fatal("OldestForTag on empty tag non-nil")
	}
}

func TestTableStats(t *testing.T) {
	tb := NewTable(TableConfig{MaxOutstanding: 4, MaxTargets: 4})
	tb.Issue(&Entry{Tag: 0, Dst: 1})
	tb.Issue(&Entry{Tag: 2, Dst: 2})
	tb.Issue(&Entry{Tag: 1, Dst: 1})
	if tb.Peak() != 3 || tb.Issued() != 3 || tb.ActiveTargets() != 2 {
		t.Fatalf("stats: peak=%d issued=%d targets=%d", tb.Peak(), tb.Issued(), tb.ActiveTargets())
	}
	tb.Complete(0)
	tb.Complete(2)
	tb.Complete(1)
	if tb.Outstanding() != 0 || tb.ActiveTargets() != 0 {
		t.Fatal("table not empty after completing all")
	}
	if tb.Peak() != 3 {
		t.Fatal("peak forgot its high-water mark")
	}
}

// TestTableSameTagTargetHazard: a tag with transactions in flight to one
// slave must not address another (the fabric orders per-tag traffic only
// along one path). This is the AXI same-ID-to-different-slave stall.
func TestTableSameTagTargetHazard(t *testing.T) {
	tb := NewTable(TableConfig{MaxOutstanding: 8, MaxTargets: 8})
	tb.Issue(&Entry{Tag: 0, Dst: 1, Seq: 1})
	if tb.CanIssue(0, 2) {
		t.Fatal("same tag admitted to a second target while in flight")
	}
	// A different tag may address the second target immediately.
	if !tb.CanIssue(1, 2) {
		t.Fatal("independent tag blocked by another tag's hazard")
	}
	// Drain tag 0; the target switch becomes legal.
	if _, err := tb.Complete(0); err != nil {
		t.Fatal(err)
	}
	if !tb.CanIssue(0, 2) {
		t.Fatal("target switch still blocked after drain")
	}
}

func TestTableConfigValidate(t *testing.T) {
	if err := (TableConfig{MaxOutstanding: 0, MaxTargets: 1}).Validate(); err == nil {
		t.Error("MaxOutstanding=0 accepted")
	}
	if err := (TableConfig{MaxOutstanding: 1, MaxTargets: 0}).Validate(); err == nil {
		t.Error("MaxTargets=0 accepted")
	}
	var _ = noctypes.NodeInvalid
}
