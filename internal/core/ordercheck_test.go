package core

import (
	"testing"

	"gonoc/internal/noctypes"
)

// noID converts a small int to a NodeID for test brevity.
func noID(i int) noctypes.NodeID { return noctypes.NodeID(i) }

func TestOrderCheckerFullyOrdered(t *testing.T) {
	c := NewOrderChecker(FullyOrdered)
	c.Issued(0, 1)
	c.Issued(5, 2) // scope id ignored for fully-ordered
	if err := c.Completed(9, 1); err != nil {
		t.Fatalf("in-order completion rejected: %v", err)
	}
	if err := c.Completed(9, 2); err != nil {
		t.Fatalf("in-order completion rejected: %v", err)
	}
}

func TestOrderCheckerFullyOrderedViolation(t *testing.T) {
	c := NewOrderChecker(FullyOrdered)
	c.Issued(0, 1)
	c.Issued(0, 2)
	if err := c.Completed(0, 2); err == nil {
		t.Fatal("out-of-order completion accepted for fully-ordered model")
	}
}

func TestOrderCheckerThreadOrdered(t *testing.T) {
	c := NewOrderChecker(ThreadOrdered)
	c.Issued(0, 1)
	c.Issued(1, 2)
	c.Issued(0, 3)
	// Thread 1 completes before thread 0 — legal.
	if err := c.Completed(1, 2); err != nil {
		t.Fatalf("cross-thread reorder rejected: %v", err)
	}
	// Within thread 0, seq 3 before seq 1 — violation.
	if err := c.Completed(0, 3); err == nil {
		t.Fatal("within-thread reorder accepted")
	}
	if err := c.Completed(0, 1); err != nil {
		t.Fatalf("in-order within thread rejected: %v", err)
	}
}

func TestOrderCheckerIDOrdered(t *testing.T) {
	c := NewOrderChecker(IDOrdered)
	c.Issued(7, 10)
	c.Issued(8, 11)
	c.Issued(7, 12)
	if err := c.Completed(8, 11); err != nil {
		t.Fatalf("cross-ID reorder rejected: %v", err)
	}
	if err := c.Completed(7, 10); err != nil {
		t.Fatalf("per-ID order rejected: %v", err)
	}
	if err := c.Completed(7, 12); err != nil {
		t.Fatalf("per-ID order rejected: %v", err)
	}
	if c.Checked() != 3 {
		t.Fatalf("Checked = %d", c.Checked())
	}
	if c.CrossScopeReorders() != 1 {
		t.Fatalf("CrossScopeReorders = %d, want 1 (11 then 10)", c.CrossScopeReorders())
	}
}

func TestOrderCheckerUnknownCompletion(t *testing.T) {
	c := NewOrderChecker(IDOrdered)
	if err := c.Completed(3, 1); err == nil {
		t.Fatal("completion with nothing outstanding accepted")
	}
}

func TestOrderCheckerOutstanding(t *testing.T) {
	c := NewOrderChecker(ThreadOrdered)
	c.Issued(0, 1)
	c.Issued(1, 2)
	if c.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d", c.Outstanding())
	}
	c.Completed(0, 1)
	if c.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d", c.Outstanding())
	}
}
