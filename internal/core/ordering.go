package core

import (
	"fmt"

	"gonoc/internal/noctypes"
)

// OrderingModel classifies a socket's response-ordering contract — the
// paper's three flavours that the single SlvAddr/MstAddr/Tag header must
// adapt to (§3).
type OrderingModel uint8

const (
	// FullyOrdered: responses return strictly in request order
	// (AHB 2.0, PVCI, BVCI).
	FullyOrdered OrderingModel = iota
	// ThreadOrdered: ordered within a thread, unordered across threads
	// (OCP with MThreadID).
	ThreadOrdered
	// IDOrdered: ordered per transaction ID, unordered across IDs
	// (AXI ARID/AWID, AVCI TID).
	IDOrdered
)

// String renders an OrderingModel.
func (m OrderingModel) String() string {
	switch m {
	case FullyOrdered:
		return "fully-ordered"
	case ThreadOrdered:
		return "thread-ordered"
	case IDOrdered:
		return "id-ordered"
	default:
		return fmt.Sprintf("ordering(%d)", uint8(m))
	}
}

// TagPolicy implements the paper's "careful assignment policy" that maps
// socket-level ordering handles (nothing for AHB, MThreadID for OCP,
// ARID/AWID/TID for AXI/AVCI) onto the NoC Tag field.
//
// The policy is sized by NumTags — the number of hardware tag contexts the
// NIU implements. This is the knob the paper describes as "scaling their
// gate count to their expected performance": a cheap NIU has one tag
// (everything serializes), an aggressive one has many.
type TagPolicy struct {
	Model   OrderingModel
	NumTags int

	// IDOrdered dynamic allocation state: protocol ID -> tag, plus a
	// refcount per tag so a tag frees only when its last outstanding
	// transaction completes. Two different protocol IDs never share a tag
	// (sharing would over-order them); the same ID always reuses its tag
	// (preserving the socket's per-ID order guarantee).
	idToTag map[int]noctypes.Tag
	tagRef  []int
	tagToID []int
}

// NewTagPolicy returns a policy with numTags hardware contexts.
func NewTagPolicy(model OrderingModel, numTags int) *TagPolicy {
	if numTags <= 0 {
		panic(fmt.Sprintf("core: NumTags must be positive, got %d", numTags))
	}
	p := &TagPolicy{Model: model, NumTags: numTags}
	if model == IDOrdered {
		p.idToTag = make(map[int]noctypes.Tag)
		p.tagRef = make([]int, numTags)
		p.tagToID = make([]int, numTags)
		for i := range p.tagToID {
			p.tagToID[i] = -1
		}
	}
	return p
}

// Map assigns a NoC tag for a new transaction with the given socket-level
// ordering handle (thread ID or transaction ID; ignored for FullyOrdered).
// ok=false means no tag context is available this cycle and the NIU must
// back-pressure the socket — the graceful degradation the paper describes
// for low-gate-count NIUs.
func (p *TagPolicy) Map(protoID int) (tag noctypes.Tag, ok bool) {
	switch p.Model {
	case FullyOrdered:
		return 0, true
	case ThreadOrdered:
		// Threads are physical contexts: thread i uses tag i. A thread
		// beyond the provisioned count cannot be accepted at all —
		// configuring enough tags is part of NIU sizing.
		if protoID < 0 || protoID >= p.NumTags {
			return 0, false
		}
		return noctypes.Tag(protoID), true
	case IDOrdered:
		if t, exists := p.idToTag[protoID]; exists {
			p.tagRef[t]++
			return t, true
		}
		for i := 0; i < p.NumTags; i++ {
			if p.tagRef[i] == 0 {
				t := noctypes.Tag(i)
				p.idToTag[protoID] = t
				p.tagToID[i] = protoID
				p.tagRef[i] = 1
				return t, true
			}
		}
		return 0, false
	default:
		return 0, false
	}
}

// Release returns a tag context when a transaction completes. For
// IDOrdered policies the mapping dissolves when the refcount reaches zero.
func (p *TagPolicy) Release(tag noctypes.Tag) {
	if p.Model != IDOrdered {
		return
	}
	i := int(tag)
	if i < 0 || i >= p.NumTags || p.tagRef[i] == 0 {
		panic(fmt.Sprintf("core: Release of unallocated %v", tag))
	}
	p.tagRef[i]--
	if p.tagRef[i] == 0 {
		delete(p.idToTag, p.tagToID[i])
		p.tagToID[i] = -1
	}
}

// ProtoIDFor reverse-maps a tag to the socket-level ID it currently
// carries (IDOrdered), the thread number (ThreadOrdered), or 0.
func (p *TagPolicy) ProtoIDFor(tag noctypes.Tag) int {
	switch p.Model {
	case ThreadOrdered:
		return int(tag)
	case IDOrdered:
		i := int(tag)
		if i >= 0 && i < p.NumTags {
			return p.tagToID[i]
		}
		return -1
	default:
		return 0
	}
}

// InUse returns the number of tag contexts currently allocated
// (IDOrdered) or the configured count otherwise; used by the area model.
func (p *TagPolicy) InUse() int {
	if p.Model != IDOrdered {
		return 0
	}
	n := 0
	for _, r := range p.tagRef {
		if r > 0 {
			n++
		}
	}
	return n
}
