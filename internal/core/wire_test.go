package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gonoc/internal/noctypes"
)

func validRequest(cmd Cmd, addr uint64, size uint8, length uint16, burst BurstKind) *Request {
	r := &Request{
		Cmd: cmd, Addr: addr, Size: size, Len: length, Burst: burst,
		Src: 1, Dst: 2, Tag: 3, Priority: noctypes.PrioDefault,
	}
	if cmd.IsWrite() {
		r.Data = make([]byte, r.Bytes())
		for i := range r.Data {
			r.Data[i] = byte(i * 7)
		}
	}
	switch cmd {
	case CmdReadEx, CmdWriteEx:
		r.Exclusive = true
	case CmdReadLock:
		r.Locked = true
	case CmdWriteUnlk:
		r.Locked, r.Unlock = true, true
	case CmdWritePost:
		r.Posted = true
	}
	return r
}

func TestRequestRoundTripAllCommands(t *testing.T) {
	for c := CmdRead; c < numCmds; c++ {
		r := validRequest(c, 0x1000, 4, 4, BurstIncr)
		if err := r.Validate(); err != nil {
			t.Fatalf("%s: validRequest is invalid: %v", c, err)
		}
		buf := EncodeRequest(r)
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", c, err)
		}
		// Wire does not carry Src/Dst/Tag/Seq; copy for comparison.
		got.Src, got.Dst, got.Tag, got.Seq = r.Src, r.Dst, r.Tag, r.Seq
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("%s: round trip mismatch:\n in: %+v\nout: %+v", c, r, got)
		}
	}
}

func TestRequestRoundTripByteEnables(t *testing.T) {
	r := validRequest(CmdWrite, 0x40, 2, 3, BurstIncr)
	r.BE = []byte{0xFF, 0x00, 0xFF, 0xFF, 0x00, 0xFF}
	buf := EncodeRequest(r)
	got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(got.BE, r.BE) {
		t.Fatalf("BE mismatch: %v vs %v", got.BE, r.BE)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, st := range []Status{StOK, StExOK, StExFail, StErrDecode, StErrSlave, StErrUnsupported} {
		p := &Response{Status: st, Data: []byte{1, 2, 3, 4}, Src: 5, Dst: 6, Tag: 7}
		buf := EncodeResponse(p)
		got, err := DecodeResponse(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", st, err)
		}
		if got.Status != st || !bytes.Equal(got.Data, p.Data) {
			t.Fatalf("%s: round trip mismatch: %+v", st, got)
		}
	}
}

func TestResponseRoundTripEmpty(t *testing.T) {
	p := &Response{Status: StOK}
	got, err := DecodeResponse(EncodeResponse(p))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Status != StOK || len(got.Data) != 0 {
		t.Fatalf("empty response mismatch: %+v", got)
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
	}{
		{"short", []byte{0xA0, 0, 0}},
		{"bad magic", append([]byte{0x50}, make([]byte, 20)...)},
		{"read with payload", func() []byte {
			b := EncodeRequest(validRequest(CmdRead, 0, 4, 1, BurstIncr))
			return append(b, 0xAB)
		}()},
		{"write short data", func() []byte {
			b := EncodeRequest(validRequest(CmdWrite, 0, 4, 2, BurstIncr))
			return b[:len(b)-1]
		}()},
	}
	for _, c := range cases {
		if _, err := DecodeRequest(c.buf); err == nil {
			t.Errorf("%s: decode succeeded, want error", c.name)
		}
	}
}

func TestDecodeResponseErrors(t *testing.T) {
	if _, err := DecodeResponse([]byte{0xB0}); err == nil {
		t.Error("short response decoded")
	}
	if _, err := DecodeResponse(append([]byte{0x10}, make([]byte, 20)...)); err == nil {
		t.Error("bad magic response decoded")
	}
	good := EncodeResponse(&Response{Status: StOK, Data: []byte{1, 2}})
	if _, err := DecodeResponse(good[:len(good)-1]); err == nil {
		t.Error("truncated response decoded")
	}
}

// Property: encode/decode is the identity on valid requests.
func TestQuickRequestRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cmds := []Cmd{CmdRead, CmdWrite, CmdWritePost, CmdReadEx, CmdWriteEx, CmdReadLock, CmdWriteUnlk}
		sizes := []uint8{1, 2, 4, 8}
		bursts := []BurstKind{BurstIncr, BurstWrap, BurstFixed}
		r := validRequest(
			cmds[rng.Intn(len(cmds))],
			rng.Uint64()>>8,
			sizes[rng.Intn(len(sizes))],
			uint16(rng.Intn(16)+1),
			bursts[rng.Intn(len(bursts))],
		)
		if r.Cmd.IsWrite() {
			rng.Read(r.Data)
			if rng.Intn(2) == 0 {
				r.BE = make([]byte, len(r.Data))
				rng.Read(r.BE)
			}
		}
		r.Priority = noctypes.Priority(rng.Intn(int(noctypes.NumPriorities)))
		buf := EncodeRequest(r)
		got, err := DecodeRequest(buf)
		if err != nil {
			return false
		}
		got.Src, got.Dst, got.Tag, got.Seq = r.Src, r.Dst, r.Tag, r.Seq
		return reflect.DeepEqual(r, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: DecodeRequest never panics on arbitrary bytes.
func TestQuickDecodeRobustness(t *testing.T) {
	prop := func(buf []byte) bool {
		_, _ = DecodeRequest(buf)
		_, _ = DecodeResponse(buf)
		return true // no panic is the property
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestValidate(t *testing.T) {
	bad := []*Request{
		{Cmd: Cmd(99), Size: 4, Len: 1},
		{Cmd: CmdRead, Size: 3, Len: 1},
		{Cmd: CmdRead, Size: 4, Len: 0},
		{Cmd: CmdRead, Size: 4, Len: 1, Burst: BurstKind(9)},
		{Cmd: CmdWrite, Size: 4, Len: 1, Data: []byte{1}},                        // short data
		{Cmd: CmdRead, Size: 4, Len: 1, Data: []byte{1, 2, 3, 4}},                // read with data
		{Cmd: CmdWrite, Size: 1, Len: 1, Data: []byte{1}, BE: []byte{1, 2}},      // BE length
		{Cmd: CmdRead, Size: 4, Len: 1, Exclusive: true},                         // excl bit on READ
		{Cmd: CmdReadEx, Size: 4, Len: 1},                                        // READEX without bit
		{Cmd: CmdWritePost, Size: 1, Len: 1, Data: []byte{0}},                    // posted flag unset
		{Cmd: CmdRead, Size: 4, Len: 1, Unlock: true},                            // unlock w/o lock
		{Cmd: CmdWrite, Size: 4, Len: 1, Data: []byte{1, 2, 3, 4}, Posted: true}, // posted on WRITE
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d (%s): Validate accepted invalid request", i, r.Cmd)
		}
	}
}

func TestCmdPredicates(t *testing.T) {
	if !CmdRead.IsRead() || CmdRead.IsWrite() {
		t.Error("CmdRead predicates wrong")
	}
	if !CmdWritePost.IsWrite() || CmdWritePost.ExpectsResponse() {
		t.Error("CmdWritePost predicates wrong")
	}
	if !CmdReadEx.IsRead() || !CmdWriteEx.IsWrite() {
		t.Error("exclusive predicates wrong")
	}
	if !CmdReadLock.IsRead() || !CmdWriteUnlk.IsWrite() {
		t.Error("lock predicates wrong")
	}
	for c := CmdRead; c < numCmds; c++ {
		if c.String() == "" || !c.Valid() {
			t.Errorf("cmd %d: bad String/Valid", uint8(c))
		}
	}
	if Cmd(200).Valid() {
		t.Error("Cmd(200) should be invalid")
	}
}

func TestStatusPredicates(t *testing.T) {
	if !StOK.OK() || !StExOK.OK() {
		t.Error("OK statuses misclassified")
	}
	for _, s := range []Status{StExFail, StErrDecode, StErrSlave, StErrUnsupported} {
		if s.OK() {
			t.Errorf("%s misclassified as OK", s)
		}
	}
}
