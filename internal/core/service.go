package core

import "gonoc/internal/noctypes"

// The paper (§3): handling AXI and OCP exclusive access "only requires
// adding a single user-defined bit in the packets, and state information
// in the NIU. This optional packet bit becomes simply part of a family of
// similar 'NoC services' that can be activated in a particular NoC
// configuration."
//
// UserBits is that family: one byte of optional, configuration-defined
// packet bits that the transport layer carries but never interprets.

// User-bit assignments for the services this repository implements.
const (
	// UserBitExclusive marks an exclusive-access transaction
	// (AXI exclusive read/write, OCP ReadLinked/WriteConditional).
	UserBitExclusive uint8 = 1 << 0
)

// ServiceSet describes which optional NoC services a configuration
// activates. Inactive services cost no packet bits and no NIU state.
type ServiceSet struct {
	// Exclusive enables the exclusive-access service (the user bit plus
	// the slave-NIU monitor table).
	Exclusive bool
	// LegacyLock enables READEX/LOCK-style locked sequences. Unlike
	// Exclusive, this service is transport-visible: switches reserve
	// arbitration paths when they see lock-flagged packets (§3).
	LegacyLock bool
}

// UserBitsFor derives the packet user bits for a request under this
// service set. Requests using a disabled service keep the bit clear; the
// slave NIU will answer StErrUnsupported.
func (s ServiceSet) UserBitsFor(r *Request) uint8 {
	var b uint8
	if s.Exclusive && r.Exclusive {
		b |= UserBitExclusive
	}
	return b
}

// Reservation is one exclusive-access monitor entry: master m has a live
// reservation on [Lo, Hi).
type Reservation struct {
	Master noctypes.NodeID
	Lo, Hi uint64
}

// ExclusiveMonitor is the slave-NIU state behind the exclusive service:
// one reservation per master (AXI-style single monitor per ID is
// approximated as per-master, which is what a per-NIU monitor sees).
//
// Semantics (matching AXI A3.4 / OCP lazy synchronization):
//   - An exclusive read by master M establishes M's reservation over the
//     burst's span, replacing any previous reservation by M.
//   - Any successful write overlapping a reservation clears it (all
//     masters' reservations, including the writer's own).
//   - An exclusive write by M succeeds iff M still holds a reservation
//     covering the write span; on success the write takes effect and
//     clears overlapping reservations; on failure nothing is written.
type ExclusiveMonitor struct {
	res map[noctypes.NodeID]Reservation
	// stats
	reserves, successes, failures uint64
}

// NewExclusiveMonitor returns an empty monitor.
func NewExclusiveMonitor() *ExclusiveMonitor {
	return &ExclusiveMonitor{res: make(map[noctypes.NodeID]Reservation)}
}

// Reserve records master's reservation over [lo, hi).
func (m *ExclusiveMonitor) Reserve(master noctypes.NodeID, lo, hi uint64) {
	m.res[master] = Reservation{Master: master, Lo: lo, Hi: hi}
	m.reserves++
}

// HasReservation reports whether master holds a reservation covering
// [lo, hi).
func (m *ExclusiveMonitor) HasReservation(master noctypes.NodeID, lo, hi uint64) bool {
	r, ok := m.res[master]
	return ok && r.Lo <= lo && hi <= r.Hi
}

// ObserveWrite clears every reservation overlapping [lo, hi). Call it for
// every write that takes effect at the target.
func (m *ExclusiveMonitor) ObserveWrite(lo, hi uint64) {
	for k, r := range m.res {
		if r.Lo < hi && lo < r.Hi {
			delete(m.res, k)
		}
	}
}

// TryExclusiveWrite checks-and-clears for an exclusive write by master
// over [lo, hi). It returns true if the write may take effect (caller must
// then apply the write AND call ObserveWrite to clear overlapping
// reservations).
func (m *ExclusiveMonitor) TryExclusiveWrite(master noctypes.NodeID, lo, hi uint64) bool {
	if m.HasReservation(master, lo, hi) {
		m.successes++
		return true
	}
	m.failures++
	return false
}

// Live returns the number of live reservations (for the area model and
// tests).
func (m *ExclusiveMonitor) Live() int { return len(m.res) }

// MonitorStats is the monitor's cumulative activity.
type MonitorStats struct{ Reserves, Successes, Failures uint64 }

// Stats returns cumulative counters.
func (m *ExclusiveMonitor) Stats() MonitorStats {
	return MonitorStats{Reserves: m.reserves, Successes: m.successes, Failures: m.failures}
}
