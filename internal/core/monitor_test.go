package core

import (
	"testing"
	"testing/quick"
)

func TestExclusiveBasicSuccess(t *testing.T) {
	m := NewExclusiveMonitor()
	m.Reserve(1, 0x100, 0x104)
	if !m.TryExclusiveWrite(1, 0x100, 0x104) {
		t.Fatal("exclusive write after undisturbed reserve failed")
	}
}

func TestExclusiveFailsWithoutReservation(t *testing.T) {
	m := NewExclusiveMonitor()
	if m.TryExclusiveWrite(1, 0x100, 0x104) {
		t.Fatal("exclusive write without reservation succeeded")
	}
}

func TestExclusiveClearedByInterveningWrite(t *testing.T) {
	m := NewExclusiveMonitor()
	m.Reserve(1, 0x100, 0x104)
	m.ObserveWrite(0x102, 0x103) // overlapping normal write by anyone
	if m.TryExclusiveWrite(1, 0x100, 0x104) {
		t.Fatal("exclusive write succeeded after intervening write")
	}
}

func TestExclusiveUnaffectedByDisjointWrite(t *testing.T) {
	m := NewExclusiveMonitor()
	m.Reserve(1, 0x100, 0x104)
	m.ObserveWrite(0x200, 0x204)
	if !m.TryExclusiveWrite(1, 0x100, 0x104) {
		t.Fatal("disjoint write broke the reservation")
	}
}

func TestExclusiveTwoMastersRace(t *testing.T) {
	// Classic lock acquisition race: both masters read-exclusive, both
	// attempt write-exclusive. Exactly one must win.
	m := NewExclusiveMonitor()
	m.Reserve(1, 0x100, 0x104)
	m.Reserve(2, 0x100, 0x104)

	win1 := m.TryExclusiveWrite(1, 0x100, 0x104)
	if win1 {
		m.ObserveWrite(0x100, 0x104) // winner's write clears others
	}
	win2 := m.TryExclusiveWrite(2, 0x100, 0x104)
	if win2 {
		m.ObserveWrite(0x100, 0x104)
	}
	if !win1 || win2 {
		t.Fatalf("race outcome win1=%v win2=%v, want exactly first winner", win1, win2)
	}
}

func TestExclusiveReservationReplaced(t *testing.T) {
	m := NewExclusiveMonitor()
	m.Reserve(1, 0x100, 0x104)
	m.Reserve(1, 0x200, 0x204) // new reserve replaces old (one monitor/master)
	if m.TryExclusiveWrite(1, 0x100, 0x104) {
		t.Fatal("stale reservation honoured")
	}
	if !m.TryExclusiveWrite(1, 0x200, 0x204) {
		t.Fatal("fresh reservation not honoured")
	}
}

func TestExclusivePartialCoverage(t *testing.T) {
	m := NewExclusiveMonitor()
	m.Reserve(1, 0x100, 0x104)
	// Write span exceeding the reservation must fail.
	if m.TryExclusiveWrite(1, 0x100, 0x108) {
		t.Fatal("write larger than reservation succeeded")
	}
	// Write inside the reservation is covered.
	if !m.TryExclusiveWrite(1, 0x102, 0x103) {
		t.Fatal("covered write failed")
	}
}

func TestExclusiveStats(t *testing.T) {
	m := NewExclusiveMonitor()
	m.Reserve(1, 0, 4)
	m.TryExclusiveWrite(1, 0, 4)
	m.TryExclusiveWrite(2, 0, 4)
	s := m.Stats()
	if s.Reserves != 1 || s.Successes != 1 || s.Failures != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if m.Live() != 1 {
		t.Fatalf("Live = %d", m.Live())
	}
}

// Property: mutual exclusion. Under any interleaving of reserve /
// write-exclusive attempts by N masters over one location, between two
// consecutive reserves by master M, at most one of M's exclusive writes
// succeeds, and no write succeeds while another master's successful write
// intervened since M's reserve.
func TestQuickExclusiveMutualExclusion(t *testing.T) {
	prop := func(ops []uint8) bool {
		m := NewExclusiveMonitor()
		const lo, hi = 0x100, 0x104
		reserved := map[int]bool{} // master -> has live reservation (shadow model)
		for _, op := range ops {
			master := int(op % 4)
			switch (op / 4) % 2 {
			case 0: // exclusive read (reserve)
				m.Reserve(noID(master), lo, hi)
				reserved[master] = true
			case 1: // exclusive write attempt
				got := m.TryExclusiveWrite(noID(master), lo, hi)
				want := reserved[master]
				if got != want {
					return false
				}
				if got {
					m.ObserveWrite(lo, hi)
					// all reservations on the location die
					reserved = map[int]bool{}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceSetUserBits(t *testing.T) {
	r := &Request{Cmd: CmdReadEx, Exclusive: true, Size: 4, Len: 1}
	on := ServiceSet{Exclusive: true}
	off := ServiceSet{Exclusive: false}
	if on.UserBitsFor(r)&UserBitExclusive == 0 {
		t.Fatal("exclusive service enabled but bit clear")
	}
	if off.UserBitsFor(r) != 0 {
		t.Fatal("disabled service set bits")
	}
	plain := &Request{Cmd: CmdRead, Size: 4, Len: 1}
	if on.UserBitsFor(plain) != 0 {
		t.Fatal("non-exclusive request got service bit")
	}
}
