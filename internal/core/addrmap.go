package core

import (
	"fmt"
	"sort"

	"gonoc/internal/noctypes"
)

// Region maps an address range to a slave NIU. Ranges are [Base, Base+Size).
type Region struct {
	Name string
	Base uint64
	Size uint64
	Node noctypes.NodeID
}

// End returns the exclusive upper bound of the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// AddressMap is the system memory map used by master-side NIUs to derive
// the packet destination field (the paper's SlvAddr) from a transaction
// address. It is immutable after Freeze.
type AddressMap struct {
	regions []Region
	frozen  bool
}

// NewAddressMap returns an empty map.
func NewAddressMap() *AddressMap { return &AddressMap{} }

// Add registers a region. It returns an error on overlap, zero size, or
// wrap-around, or if the map is frozen.
func (m *AddressMap) Add(name string, base, size uint64, node noctypes.NodeID) error {
	if m.frozen {
		return fmt.Errorf("core: address map is frozen")
	}
	if size == 0 {
		return fmt.Errorf("core: region %q has zero size", name)
	}
	if base+size < base {
		return fmt.Errorf("core: region %q wraps the address space", name)
	}
	nr := Region{Name: name, Base: base, Size: size, Node: node}
	for _, r := range m.regions {
		if nr.Base < r.End() && r.Base < nr.End() {
			return fmt.Errorf("core: region %q [%#x,%#x) overlaps %q [%#x,%#x)",
				name, nr.Base, nr.End(), r.Name, r.Base, r.End())
		}
	}
	m.regions = append(m.regions, nr)
	return nil
}

// MustAdd is Add that panics on error; for test and example setup.
func (m *AddressMap) MustAdd(name string, base, size uint64, node noctypes.NodeID) {
	if err := m.Add(name, base, size, node); err != nil {
		panic(err)
	}
}

// Freeze sorts the map for binary search and prevents further changes.
func (m *AddressMap) Freeze() {
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
	m.frozen = true
}

// Decode resolves an address to (slave node, offset within region).
// ok is false if no region contains the address — the NoC answers such
// requests with StErrDecode, like a default slave.
func (m *AddressMap) Decode(addr uint64) (node noctypes.NodeID, offset uint64, ok bool) {
	if m.frozen {
		i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].End() > addr })
		if i < len(m.regions) && m.regions[i].Base <= addr {
			r := m.regions[i]
			return r.Node, addr - r.Base, true
		}
		return noctypes.NodeInvalid, 0, false
	}
	for _, r := range m.regions {
		if r.Base <= addr && addr < r.End() {
			return r.Node, addr - r.Base, true
		}
	}
	return noctypes.NodeInvalid, 0, false
}

// Regions returns a copy of the registered regions.
func (m *AddressMap) Regions() []Region {
	out := make([]Region, len(m.regions))
	copy(out, m.regions)
	return out
}

// NodeFor returns the region named name's node, for test convenience.
func (m *AddressMap) NodeFor(name string) (noctypes.NodeID, bool) {
	for _, r := range m.regions {
		if r.Name == name {
			return r.Node, true
		}
	}
	return noctypes.NodeInvalid, false
}
