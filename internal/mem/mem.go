// Package mem provides the byte-addressable backing store shared by all
// memory-target IP models. It is deliberately protocol-free: each socket's
// memory slave wraps one Backing and speaks its own protocol on top.
package mem

import "fmt"

const pageBits = 12 // 4 KiB pages
const pageSize = 1 << pageBits

// Backing is a sparse byte-addressable memory. Unwritten bytes read as
// zero. Not safe for concurrent use; the simulator is single-threaded by
// design.
type Backing struct {
	pages         map[uint64][]byte
	size          uint64 // address-space bound; 0 = unbounded
	reads, writes uint64
}

// NewBacking returns a store bounded to size bytes (0 = unbounded).
func NewBacking(size uint64) *Backing {
	return &Backing{pages: make(map[uint64][]byte), size: size}
}

// Size returns the configured bound (0 = unbounded).
func (b *Backing) Size() uint64 { return b.size }

// InBounds reports whether [addr, addr+n) lies within the store.
func (b *Backing) InBounds(addr uint64, n int) bool {
	if n < 0 {
		return false
	}
	end := addr + uint64(n)
	if end < addr {
		return false
	}
	return b.size == 0 || end <= b.size
}

func (b *Backing) page(addr uint64, create bool) []byte {
	key := addr >> pageBits
	p, ok := b.pages[key]
	if !ok && create {
		p = make([]byte, pageSize)
		b.pages[key] = p
	}
	return p
}

// Read copies n bytes starting at addr.
func (b *Backing) Read(addr uint64, n int) []byte {
	if !b.InBounds(addr, n) {
		panic(fmt.Sprintf("mem: read [%#x,+%d) out of bounds (size %#x)", addr, n, b.size))
	}
	out := make([]byte, n)
	for i := 0; i < n; {
		p := b.page(addr+uint64(i), false)
		off := int((addr + uint64(i)) & (pageSize - 1))
		chunk := pageSize - off
		if chunk > n-i {
			chunk = n - i
		}
		if p != nil {
			copy(out[i:i+chunk], p[off:off+chunk])
		}
		i += chunk
	}
	b.reads++
	return out
}

// Write stores data at addr. If be is non-nil, only bytes with a non-zero
// byte-enable are written.
func (b *Backing) Write(addr uint64, data, be []byte) {
	if !b.InBounds(addr, len(data)) {
		panic(fmt.Sprintf("mem: write [%#x,+%d) out of bounds (size %#x)", addr, len(data), b.size))
	}
	if be != nil && len(be) != len(data) {
		panic(fmt.Sprintf("mem: byte-enable length %d != data length %d", len(be), len(data)))
	}
	for i := range data {
		if be != nil && be[i] == 0 {
			continue
		}
		p := b.page(addr+uint64(i), true)
		p[(addr+uint64(i))&(pageSize-1)] = data[i]
	}
	b.writes++
}

// Accesses returns cumulative read and write operation counts.
func (b *Backing) Accesses() (reads, writes uint64) { return b.reads, b.writes }
