package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadZeroFill(t *testing.T) {
	b := NewBacking(0x1000)
	got := b.Read(0x100, 16)
	for _, v := range got {
		if v != 0 {
			t.Fatalf("unwritten memory not zero: %v", got)
		}
	}
}

func TestWriteReadBack(t *testing.T) {
	b := NewBacking(0x10000)
	data := []byte{1, 2, 3, 4, 5}
	b.Write(0x42, data, nil)
	if got := b.Read(0x42, 5); !bytes.Equal(got, data) {
		t.Fatalf("read back %v", got)
	}
	r, w := b.Accesses()
	if r != 1 || w != 1 {
		t.Fatalf("access counts %d/%d", r, w)
	}
}

func TestWriteAcrossPageBoundary(t *testing.T) {
	b := NewBacking(0x10000)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i + 1)
	}
	addr := uint64(pageSize - 32) // straddles the first page boundary
	b.Write(addr, data, nil)
	if got := b.Read(addr, 64); !bytes.Equal(got, data) {
		t.Fatal("cross-page write corrupted")
	}
}

func TestByteEnables(t *testing.T) {
	b := NewBacking(0x1000)
	b.Write(0x10, []byte{0xAA, 0xBB, 0xCC, 0xDD}, nil)
	b.Write(0x10, []byte{0x11, 0x22, 0x33, 0x44}, []byte{0xFF, 0, 0, 0xFF})
	want := []byte{0x11, 0xBB, 0xCC, 0x44}
	if got := b.Read(0x10, 4); !bytes.Equal(got, want) {
		t.Fatalf("BE write = %v, want %v", got, want)
	}
}

func TestBounds(t *testing.T) {
	b := NewBacking(0x100)
	if !b.InBounds(0xFF, 1) || b.InBounds(0xFF, 2) {
		t.Fatal("InBounds edge wrong")
	}
	if b.InBounds(^uint64(0), 8) {
		t.Fatal("wrap-around accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds read did not panic")
		}
	}()
	b.Read(0x100, 1)
}

func TestUnboundedBacking(t *testing.T) {
	b := NewBacking(0)
	b.Write(1<<40, []byte{7}, nil)
	if got := b.Read(1<<40, 1); got[0] != 7 {
		t.Fatal("unbounded write lost")
	}
}

func TestBadBELengthPanics(t *testing.T) {
	b := NewBacking(0x100)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched BE length did not panic")
		}
	}()
	b.Write(0, []byte{1, 2}, []byte{0xFF})
}

// Property: a write followed by a read of the same span returns the
// written bytes (with full enables), regardless of page alignment.
func TestQuickWriteReadIdentity(t *testing.T) {
	b := NewBacking(1 << 20)
	prop := func(addrRaw uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 512 {
			data = data[:512]
		}
		addr := uint64(addrRaw) % (1<<20 - 512)
		b.Write(addr, data, nil)
		return bytes.Equal(b.Read(addr, len(data)), data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
