package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Histogram is a power-of-two-bucketed counter for non-negative integer
// samples (cycles). Bucket 0 holds the value 0; bucket b >= 1 holds
// values in [2^(b-1), 2^b - 1]. Log-spaced buckets keep the footprint
// constant while resolving both zero-load and saturated-latency regimes,
// which is what latency-vs-offered-load curves need. The zero value is
// ready to use.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    int64
	max    int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Record adds one sample. Negative samples count as zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	for len(h.counts) <= b {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
	h.total++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the exact average of recorded samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Merge folds o's counts into h.
func (h *Histogram) Merge(o *Histogram) {
	for b, c := range o.counts {
		for len(h.counts) <= b {
			h.counts = append(h.counts, 0)
		}
		h.counts[b] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// HistBucket is one exported histogram bin.
type HistBucket struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Count uint64 `json:"count"`
}

// boundsOf returns the inclusive value range of bucket b.
func boundsOf(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	return 1 << (b - 1), (1 << b) - 1
}

// Buckets returns the non-empty bins in ascending value order.
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := boundsOf(b)
		out = append(out, HistBucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// PercentileUpper returns the upper bound of the bucket containing the
// p-th percentile sample (0 < p <= 100), an O(buckets) approximation of
// the exact percentile. It returns 0 with no samples.
//
// The rank uses nearest-rank (ceiling) semantics, ceil(p/100 * total):
// flooring would read one sample low at every boundary (p95 of 10
// samples would return the 9th sample's bucket instead of the 10th's).
func (h *Histogram) PercentileUpper(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			_, hi := boundsOf(b)
			return hi
		}
	}
	_, hi := boundsOf(len(h.counts) - 1)
	return hi
}

// histogramJSON is the wire shape of a Histogram: the summary scalars
// plus the non-empty bins with their inclusive [lo,hi] value bounds —
// consumers (the heatmap sink, external plotters) read the bounds off
// the wire instead of reconstructing the power-of-two bucketing rule.
// HistBucket keeps its original lo/hi/count fields, so documents that
// embedded []HistBucket directly (Result.Hist, CampaignResult.Hist) are
// unchanged.
type histogramJSON struct {
	Total   uint64       `json:"total"`
	Mean    float64      `json:"mean"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets"`
}

// MarshalJSON exports the histogram as
// {"total","mean","max","buckets":[{"lo","hi","count"},...]}.
// (Without this, an embedded *Histogram would marshal as "{}" — all its
// fields are unexported.)
func (h *Histogram) MarshalJSON() ([]byte, error) {
	buckets := h.Buckets()
	if buckets == nil {
		buckets = []HistBucket{}
	}
	return json.Marshal(histogramJSON{
		Total: h.total, Mean: h.Mean(), Max: h.max, Buckets: buckets,
	})
}

// UnmarshalJSON restores a histogram exported by MarshalJSON (bucket
// counts land in the bucket of each bin's upper bound, which is exact
// for the power-of-two bucketing MarshalJSON writes; the sample sum is
// approximated from the means, so Mean round-trips, sample values
// don't).
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var wire histogramJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	*h = Histogram{}
	for _, b := range wire.Buckets {
		bi := bucketOf(b.Hi)
		for len(h.counts) <= bi {
			h.counts = append(h.counts, 0)
		}
		h.counts[bi] += b.Count
		h.total += b.Count
	}
	h.max = wire.Max
	h.sum = int64(math.Round(wire.Mean * float64(wire.Total)))
	return nil
}

// String renders the non-empty bins compactly: "[1,1]:3 [2,3]:9 ...".
func (h *Histogram) String() string {
	if h.total == 0 {
		return "empty"
	}
	var b strings.Builder
	for i, bk := range h.Buckets() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "[%d,%d]:%d", bk.Lo, bk.Hi, bk.Count)
	}
	return b.String()
}
