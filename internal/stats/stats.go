// Package stats provides the measurement plumbing shared by experiments
// and benchmarks: latency recorders with exact percentiles, throughput
// accounting, and plain-text table rendering for paper-style output.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Latency records integer samples (cycles) and reports summary
// statistics. The zero value is ready to use.
type Latency struct {
	samples []int64
	sum     int64
	min     int64
	max     int64
}

// Record adds a sample.
func (l *Latency) Record(v int64) {
	if len(l.samples) == 0 || v < l.min {
		l.min = v
	}
	if len(l.samples) == 0 || v > l.max {
		l.max = v
	}
	l.samples = append(l.samples, v)
	l.sum += v
}

// Merge folds other's samples into l. Because the summary statistics are
// order-invariant (sum, extrema, and nearest-rank percentiles on a sorted
// copy), merging per-shard recorders yields byte-identical results to one
// recorder having seen every sample, regardless of shard count.
func (l *Latency) Merge(other *Latency) {
	if other.Count() == 0 {
		return
	}
	if l.Count() == 0 || other.min < l.min {
		l.min = other.min
	}
	if l.Count() == 0 || other.max > l.max {
		l.max = other.max
	}
	l.samples = append(l.samples, other.samples...)
	l.sum += other.sum
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the average, or 0 with no samples.
func (l *Latency) Mean() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	return float64(l.sum) / float64(len(l.samples))
}

// Min and Max return the extrema (0 with no samples).
func (l *Latency) Min() int64 { return l.min }
func (l *Latency) Max() int64 { return l.max }

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank on the sorted samples.
func (l *Latency) Percentile(p float64) int64 {
	return percentileOf(l.sorted(), p)
}

// sorted returns a sorted copy of the samples.
func (l *Latency) sorted() []int64 {
	sorted := append([]int64(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}

// percentileOf is nearest-rank selection on an already-sorted slice.
func percentileOf(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// String summarizes the distribution.
func (l *Latency) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p95=%d max=%d",
		l.Count(), l.Mean(), l.Percentile(50), l.Percentile(95), l.Max())
}

// Throughput tracks completed work over a cycle window.
type Throughput struct {
	Done   uint64
	Cycles int64
}

// PerKCycle returns completions per thousand cycles.
func (t Throughput) PerKCycle() float64 {
	if t.Cycles == 0 {
		return 0
	}
	return float64(t.Done) * 1000 / float64(t.Cycles)
}

// Table is a paper-style results table.
type Table struct {
	Title string
	Cols  []string
	rows  [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	return &Table{Title: title, Cols: cols}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the table body.
func (t *Table) Rows() [][]string { return t.rows }

// Render produces an aligned plain-text table.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Mark renders a boolean as a compatibility-matrix cell.
func Mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
