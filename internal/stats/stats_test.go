package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestLatencyBasics(t *testing.T) {
	var l Latency
	for _, v := range []int64{10, 20, 30, 40, 50} {
		l.Record(v)
	}
	if l.Count() != 5 || l.Min() != 10 || l.Max() != 50 {
		t.Fatalf("count/min/max: %d %d %d", l.Count(), l.Min(), l.Max())
	}
	if l.Mean() != 30 {
		t.Fatalf("mean = %f", l.Mean())
	}
	if p := l.Percentile(50); p != 30 {
		t.Fatalf("p50 = %d", p)
	}
	if p := l.Percentile(100); p != 50 {
		t.Fatalf("p100 = %d", p)
	}
	if l.String() == "" {
		t.Fatal("empty String")
	}
}

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.Count() != 0 {
		t.Fatal("empty recorder not zeroed")
	}
}

func TestLatencyPercentileUnsorted(t *testing.T) {
	var l Latency
	for _, v := range []int64{90, 10, 50, 70, 30} {
		l.Record(v)
	}
	if p := l.Percentile(20); p != 10 {
		t.Fatalf("p20 = %d", p)
	}
	if p := l.Percentile(95); p != 90 {
		t.Fatalf("p95 = %d", p)
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Done: 250, Cycles: 1000}
	if tp.PerKCycle() != 250 {
		t.Fatalf("PerKCycle = %f", tp.PerKCycle())
	}
	if (Throughput{}).PerKCycle() != 0 {
		t.Fatal("zero-cycle throughput not zero")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta", 2.5)
	out := tb.Render()
	if !strings.Contains(out, "## demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Fatalf("cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if len(tb.Rows()) != 2 {
		t.Fatal("Rows() wrong")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "long-header")
	tb.AddRow("xxxxxxxxxx", "y")
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and row should be padded to equal visible width.
	if len(lines[0]) == 0 || len(lines[2]) == 0 {
		t.Fatalf("bad render:\n%s", out)
	}
}

func TestMark(t *testing.T) {
	if Mark(true) != "yes" || Mark(false) != "NO" {
		t.Fatal("Mark wrong")
	}
}

func TestLatencyPercentileEdges(t *testing.T) {
	// Empty recorder: every percentile is 0, not a panic.
	var empty Latency
	for _, p := range []float64{0.1, 50, 99, 100} {
		if v := empty.Percentile(p); v != 0 {
			t.Fatalf("empty p%.1f = %d, want 0", p, v)
		}
	}
	// Single sample: every percentile is that sample.
	var one Latency
	one.Record(42)
	for _, p := range []float64{0.1, 1, 50, 99, 100} {
		if v := one.Percentile(p); v != 42 {
			t.Fatalf("single-sample p%.1f = %d, want 42", p, v)
		}
	}
	if one.Min() != 42 || one.Max() != 42 || one.Mean() != 42 {
		t.Fatalf("single-sample min/max/mean: %d %d %f", one.Min(), one.Max(), one.Mean())
	}
}

func TestLatencySummary(t *testing.T) {
	var l Latency
	for v := int64(1); v <= 100; v++ {
		l.Record(v)
	}
	s := l.Summary()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary count/min/max: %+v", s)
	}
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Fatalf("summary percentiles: %+v", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	if h.String() != "empty" || h.PercentileUpper(50) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1000} {
		h.Record(v)
	}
	if h.Total() != 8 || h.Max() != 1000 {
		t.Fatalf("total/max: %d %d", h.Total(), h.Max())
	}
	bks := h.Buckets()
	// Expect bins: [0,0]:1 [1,1]:1 [2,3]:2 [4,7]:2 [8,15]:1 [512,1023]:1.
	want := []HistBucket{
		{0, 0, 1}, {1, 1, 1}, {2, 3, 2}, {4, 7, 2}, {8, 15, 1}, {512, 1023, 1},
	}
	if len(bks) != len(want) {
		t.Fatalf("buckets: %v", bks)
	}
	for i, b := range bks {
		if b != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b, want[i])
		}
	}
	// Rank of p50 over 8 samples is 4; the 4th sample (3) is in [2,3].
	if got := h.PercentileUpper(50); got != 3 {
		t.Fatalf("p50 upper = %d, want 3", got)
	}
	if got := h.PercentileUpper(100); got != 1023 {
		t.Fatalf("p100 upper = %d, want 1023", got)
	}
}

func TestHistogramPercentileNearestRank(t *testing.T) {
	// Nine fast samples and one slow one: the p95 of 10 samples is the
	// 10th by nearest-rank (ceil(0.95*10) = 10). A floored rank read the
	// 9th sample and reported the fast bucket.
	var h Histogram
	for i := 0; i < 9; i++ {
		h.Record(1)
	}
	h.Record(1000)
	if got := h.PercentileUpper(95); got != 1023 {
		t.Fatalf("p95 of 9x1+1x1000 = %d, want 1023 (nearest-rank reads the 10th sample)", got)
	}
	if got := h.PercentileUpper(90); got != 1 {
		t.Fatalf("p90 = %d, want 1 (rank 9 is still a fast sample)", got)
	}
	if got := h.PercentileUpper(100); got != 1023 {
		t.Fatalf("p100 = %d, want 1023", got)
	}
	// Tiny p never ranks below the first sample; huge totals never rank
	// above the last.
	if got := h.PercentileUpper(0.001); got != 1 {
		t.Fatalf("p0.001 = %d, want 1", got)
	}
	var one Histogram
	one.Record(7)
	for _, p := range []float64{1, 50, 95, 99, 100} {
		if got := one.PercentileUpper(p); got != 7 {
			t.Fatalf("single-sample p%.0f = %d, want 7", p, got)
		}
	}
}

func TestHistogramMergeAndMean(t *testing.T) {
	var a, b Histogram
	a.Record(10)
	a.Record(20)
	b.Record(30)
	b.Record(1000)
	a.Merge(&b)
	if a.Total() != 4 || a.Max() != 1000 {
		t.Fatalf("merged total/max: %d %d", a.Total(), a.Max())
	}
	if a.Mean() != 265 {
		t.Fatalf("merged mean = %f", a.Mean())
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1)
	var sb strings.Builder
	if err := WriteJSON(&sb, tb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{`"title": "demo"`, `"cols"`, `"alpha"`} {
		if !strings.Contains(out, frag) {
			t.Fatalf("JSON missing %q:\n%s", frag, out)
		}
	}
	// Empty table must marshal rows as [], not null.
	var sb2 strings.Builder
	if err := WriteJSON(&sb2, NewTable("t", "c")); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "null") {
		t.Fatalf("empty table marshals null:\n%s", sb2.String())
	}
}

func TestHistogramJSONBounds(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 3, 3, 7, 100} {
		h.Record(v)
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket bounds must be on the wire, not reconstructed by readers.
	for _, frag := range []string{`"total":6`, `"max":100`, `"buckets"`, `"lo":2,"hi":3,"count":2`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("histogram JSON missing %q:\n%s", frag, data)
		}
	}

	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != h.Total() || back.Max() != h.Max() {
		t.Fatalf("round trip lost totals: got %d/%d want %d/%d",
			back.Total(), back.Max(), h.Total(), h.Max())
	}
	if back.Mean() != h.Mean() {
		t.Fatalf("round trip lost mean: got %v want %v", back.Mean(), h.Mean())
	}

	// Mean reconstruction must round, not truncate: one sample of 1
	// among 48 zeros makes mean*total = 0.99999999999999989.
	var frac Histogram
	frac.Record(1)
	for i := 0; i < 48; i++ {
		frac.Record(0)
	}
	fd, err := json.Marshal(&frac)
	if err != nil {
		t.Fatal(err)
	}
	var fback Histogram
	if err := json.Unmarshal(fd, &fback); err != nil {
		t.Fatal(err)
	}
	if fback.Mean() != frac.Mean() {
		t.Fatalf("fractional mean lost: got %v want %v", fback.Mean(), frac.Mean())
	}
	if got, want := back.String(), h.String(); got != want {
		t.Fatalf("round trip changed buckets: got %s want %s", got, want)
	}

	// Empty histogram: buckets must be [], not null.
	data, err = json.Marshal(&Histogram{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "null") {
		t.Fatalf("empty histogram marshals null: %s", data)
	}
}

func TestLatencyMerge(t *testing.T) {
	// Merging shard-local recorders must be indistinguishable from one
	// recorder having seen all samples, in any grouping.
	all := []int64{40, 7, 993, 12, 12, 88, 3, 560, 41, 2}
	var whole Latency
	for _, v := range all {
		whole.Record(v)
	}
	var a, b, c, merged Latency
	for i, v := range all {
		switch i % 3 {
		case 0:
			a.Record(v)
		case 1:
			b.Record(v)
		default:
			c.Record(v)
		}
	}
	merged.Merge(&a)
	merged.Merge(&b)
	merged.Merge(&c)
	merged.Merge(&Latency{}) // empty merge is a no-op

	if merged.Count() != whole.Count() || merged.Mean() != whole.Mean() {
		t.Fatalf("merged count/mean = %d/%v, want %d/%v", merged.Count(), merged.Mean(), whole.Count(), whole.Mean())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged extrema = %d/%d, want %d/%d", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	for _, p := range []float64{1, 50, 95, 99, 100} {
		if merged.Percentile(p) != whole.Percentile(p) {
			t.Fatalf("p%v: merged %d != whole %d", p, merged.Percentile(p), whole.Percentile(p))
		}
	}

	// Merging into an empty recorder adopts the extrema.
	var fresh Latency
	fresh.Merge(&whole)
	if fresh.Min() != whole.Min() || fresh.Max() != whole.Max() || fresh.Count() != whole.Count() {
		t.Fatal("merge into empty recorder lost samples or extrema")
	}
}
