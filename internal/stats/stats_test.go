package stats

import (
	"strings"
	"testing"
)

func TestLatencyBasics(t *testing.T) {
	var l Latency
	for _, v := range []int64{10, 20, 30, 40, 50} {
		l.Record(v)
	}
	if l.Count() != 5 || l.Min() != 10 || l.Max() != 50 {
		t.Fatalf("count/min/max: %d %d %d", l.Count(), l.Min(), l.Max())
	}
	if l.Mean() != 30 {
		t.Fatalf("mean = %f", l.Mean())
	}
	if p := l.Percentile(50); p != 30 {
		t.Fatalf("p50 = %d", p)
	}
	if p := l.Percentile(100); p != 50 {
		t.Fatalf("p100 = %d", p)
	}
	if l.String() == "" {
		t.Fatal("empty String")
	}
}

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Percentile(50) != 0 || l.Count() != 0 {
		t.Fatal("empty recorder not zeroed")
	}
}

func TestLatencyPercentileUnsorted(t *testing.T) {
	var l Latency
	for _, v := range []int64{90, 10, 50, 70, 30} {
		l.Record(v)
	}
	if p := l.Percentile(20); p != 10 {
		t.Fatalf("p20 = %d", p)
	}
	if p := l.Percentile(95); p != 90 {
		t.Fatalf("p95 = %d", p)
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Done: 250, Cycles: 1000}
	if tp.PerKCycle() != 250 {
		t.Fatalf("PerKCycle = %f", tp.PerKCycle())
	}
	if (Throughput{}).PerKCycle() != 0 {
		t.Fatal("zero-cycle throughput not zero")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta", 2.5)
	out := tb.Render()
	if !strings.Contains(out, "## demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Fatalf("cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if len(tb.Rows()) != 2 {
		t.Fatal("Rows() wrong")
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "a", "long-header")
	tb.AddRow("xxxxxxxxxx", "y")
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and row should be padded to equal visible width.
	if len(lines[0]) == 0 || len(lines[2]) == 0 {
		t.Fatalf("bad render:\n%s", out)
	}
}

func TestMark(t *testing.T) {
	if Mark(true) != "yes" || Mark(false) != "NO" {
		t.Fatal("Mark wrong")
	}
}
