package stats

import (
	"encoding/json"
	"io"
)

// This file is the JSON face of the stats package: every result type the
// experiments and CLIs print as text tables can also be exported as
// machine-readable JSON, so CI can record benchmark trajectories
// (BENCH_*.json) and plots can be regenerated without re-running.

// jsonTable is the wire shape of a Table.
type jsonTable struct {
	Title string     `json:"title"`
	Cols  []string   `json:"cols"`
	Rows  [][]string `json:"rows"`
}

// MarshalJSON exports the table as {"title", "cols", "rows"}.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(jsonTable{Title: t.Title, Cols: t.Cols, Rows: rows})
}

// LatencySummary is the exportable digest of a Latency recorder.
type LatencySummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Summary digests the recorder into a LatencySummary, sorting the
// samples once for all three percentiles.
func (l *Latency) Summary() LatencySummary {
	sorted := l.sorted()
	return LatencySummary{
		Count: l.Count(),
		Mean:  l.Mean(),
		Min:   l.Min(),
		Max:   l.Max(),
		P50:   percentileOf(sorted, 50),
		P95:   percentileOf(sorted, 95),
		P99:   percentileOf(sorted, 99),
	}
}

// WriteJSON indent-encodes v to w.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
