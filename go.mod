module gonoc

go 1.22
