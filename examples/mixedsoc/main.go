// Mixedsoc: the paper's Fig 1 — seven IP masters with seven different
// sockets (AXI, OCP, AHB, PVCI, BVCI, AVCI, and a proprietary streaming
// protocol) plus four mixed-socket memories, all on one layered NoC,
// each behind its protocol's NIU. Runs a self-checking workload and
// prints per-socket results.
package main

import (
	"fmt"
	"log"

	"gonoc/internal/soc"
	"gonoc/internal/stats"
)

func main() {
	s := soc.BuildNoC(soc.Config{
		Seed:              2005, // the year the paper appeared
		RequestsPerMaster: 30,
		Topology:          soc.Mesh, // 4x3 mesh, XY routing
	})
	cycles, err := s.Run(10_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Fig-1 mixed SoC on a 4x3 mesh NoC: all sockets served in %d cycles\n\n", cycles)
	t := stats.NewTable("per-socket traffic (write+read-back pairs, self-checked)",
		"socket", "pairs", "mean lat (cyc)", "p95", "data mismatches")
	for _, name := range []string{"axi", "ocp", "ahb", "pvci", "bvci", "avci", "prop"} {
		g := s.Gens[name].Stats()
		t.AddRow(name, g.Completed, g.Latency.Mean(), g.Latency.Percentile(95), g.Mismatches)
	}
	fmt.Println(t.Render())

	nt := stats.NewTable("NIU state (the paper's lookup tables at work)",
		"NIU", "transactions", "posted", "peak outstanding")
	for _, name := range []string{"axi", "ocp", "ahb", "pvci", "bvci", "avci", "prop"} {
		st := s.MasterNIUs[name].Stats()
		nt.AddRow(name, st.Issued, st.Posted, st.PeakTable)
	}
	fmt.Println(nt.Render())
	fmt.Printf("fabric totals: %d packets injected / %d ejected — transport never saw a transaction\n",
		s.Net.Injected(), s.Net.Ejected())
}
