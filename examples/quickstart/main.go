// Quickstart: the smallest complete NoC — one AXI CPU model and one AXI
// memory on a two-node fabric, connected through NIUs. Demonstrates the
// layering: the IP talks native AXI; the fabric sees only packets.
package main

import (
	"fmt"
	"log"

	"gonoc/internal/core"
	"gonoc/internal/mem"
	"gonoc/internal/niu"
	"gonoc/internal/noctypes"
	"gonoc/internal/protocols/axi"
	"gonoc/internal/sim"
	"gonoc/internal/transport"
)

func main() {
	// 1. Simulation substrate: a kernel and one 1 GHz clock domain.
	k := sim.NewKernel()
	clk := sim.NewClock(k, "sys", sim.Nanosecond, 0)

	// 2. Transport layer: a two-node crossbar fabric.
	const (
		cpuNode noctypes.NodeID = 1
		memNode noctypes.NodeID = 2
	)
	net := transport.NewCrossbar(clk, transport.NetConfig{}, []noctypes.NodeID{cpuNode, memNode})

	// 3. Transaction layer: the system address map (SlvAddr decode).
	amap := core.NewAddressMap()
	amap.MustAdd("ram", 0x8000_0000, 1<<20, memNode)
	amap.Freeze()

	// 4. IP blocks and their NIUs.
	cpuPort := axi.NewPort(clk, "cpu", 4)
	cpu := axi.NewMaster(clk, cpuPort, nil)
	niu.NewAXIMaster(clk, net, amap, cpuPort, niu.MasterConfig{
		Node:     cpuNode,
		Services: core.ServiceSet{Exclusive: true},
	})

	ramPort := axi.NewPort(clk, "ram", 4)
	store := mem.NewBacking(1 << 20)
	axi.NewMemory(clk, ramPort, store, 0x8000_0000, axi.MemoryConfig{Latency: 2})
	niu.NewAXISlave(clk, net, ramPort, niu.SlaveConfig{
		Node:     memNode,
		Services: core.ServiceSet{Exclusive: true},
	})

	// 5. Traffic: write a burst, read it back, and measure.
	payload := []byte("hello, VC-neutral transaction layer!____") // 40B -> pad to 10 beats
	var writeDone, readDone bool
	var got []byte
	issueCycle := clk.Cycle()

	cpu.Write(0, 0x8000_0100, 4, axi.BurstIncr, payload, func(r axi.Resp) {
		writeDone = true
		fmt.Printf("cycle %4d: write completed (%v)\n", clk.Cycle(), r)
		cpu.Read(0, 0x8000_0100, 4, len(payload)/4, axi.BurstIncr, func(res axi.ReadResult) {
			readDone = true
			got = res.Data
			fmt.Printf("cycle %4d: read  completed (%v)\n", clk.Cycle(), res.Resp)
		})
	})

	clk.Start()
	if err := k.RunWhile(func() bool { return !writeDone || !readDone }, 100*sim.Microsecond); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround trip: %d cycles, data %q\n", clk.Cycle()-issueCycle, got)
	fmt.Printf("fabric moved %d packets end to end\n", net.Ejected())
	if string(got) != string(payload) {
		log.Fatal("data mismatch!")
	}
	fmt.Println("ok")
}
