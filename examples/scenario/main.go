// Scenario: run a declarative experiment composition from a JSON file
// instead of wiring the SoC in Go. The embedded cpu-dma-display file —
// worked example 2 in docs/SCENARIOS.md — declares a CPU, a DMA engine,
// and an urgent-priority display controller on a QoS mesh; the scenario
// layer validates it, lowers it onto the soc/traffic APIs, and runs it.
//
// The same file runs from the command line:
//
//	go run ./cmd/noctraffic -scenario examples/scenario/cpu-dma-display.scenario.json
package main

import (
	"bytes"
	_ "embed"
	"fmt"
	"log"
	"reflect"

	"gonoc/internal/scenario"
)

//go:embed cpu-dma-display.scenario.json
var scenarioFile []byte

func main() {
	// 1. Load: strict decode + validation. A typoed field or an
	// overlapping address window dies here with the field's name.
	s, err := scenario.Load(bytes.NewReader(scenarioFile))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q (%s workload on a %s, mode %s)\n%s\n\n",
		s.Name, s.Workload.Kind, s.Fabric.Topology, s.Mode(), s.Description)

	// 2. Execute: the resolver lowers the declaration onto the existing
	// soc/traffic engines — the same code path every flag-driven run
	// uses, so scenario results are comparable with everything else.
	rep, err := scenario.Execute(s, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The report for a "soc" scenario is the per-master digest.
	fmt.Println(rep.Trans.Table().Render())
	fmt.Printf("throughput: %.1f completions/kcycle; incomplete at drain cap: %d\n",
		rep.Trans.Throughput, rep.Trans.Incomplete)

	// 4. Determinism is part of the contract: same file, same seed,
	// bit-identical digest (E14 holds this for every built-in).
	again, err := scenario.Execute(s, nil)
	if err != nil {
		log.Fatal(err)
	}
	if reflect.DeepEqual(rep, again) {
		fmt.Println("re-run: bit-identical ✓")
	} else {
		log.Fatal("re-run diverged — scenario execution must be deterministic")
	}
}
