// Busbridge: the paper's Fig 2 next to its Fig 1 — the same seven-master
// mixed-socket IP set run on (a) a traditional shared AHB bus where every
// foreign socket crosses a bridge, and (b) the layered NoC. Prints the
// latency penalty bridges introduce.
package main

import (
	"fmt"
	"log"

	"gonoc/internal/soc"
	"gonoc/internal/stats"
)

func main() {
	const seed, requests = 7, 20

	noc := soc.BuildNoC(soc.Config{Seed: seed, RequestsPerMaster: requests})
	nocCycles, err := noc.Run(10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	bus := soc.BuildBus(soc.Config{Seed: seed, RequestsPerMaster: requests})
	busCycles, err := bus.Run(40_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Same IP set, same seed, two interconnects (paper Fig 1 vs Fig 2):")
	fmt.Printf("  NoC total: %8d cycles\n", nocCycles)
	fmt.Printf("  bus total: %8d cycles (%.1fx)\n\n", busCycles, float64(busCycles)/float64(nocCycles))

	t := stats.NewTable("mean transaction latency (cycles)",
		"socket", "NoC (NIU)", "bus (bridge)", "penalty")
	for _, name := range []string{"axi", "ocp", "ahb", "pvci", "bvci", "avci", "prop"} {
		n := noc.Gens[name].Stats().Latency.Mean()
		b := bus.Gens[name].Stats().Latency.Mean()
		t.AddRow(name, n, b, fmt.Sprintf("%.1fx", b/n))
	}
	fmt.Println(t.Render())
	fmt.Println("note: the AHB master is native on the bus (it IS the reference socket);")
	fmt.Println("every other socket pays bridge latency and serialization — §2's penalty.")
}
