// QoS: the transport layer's quality-of-service knob (paper §1). Three
// masters flood one target with low / default / urgent traffic; with QoS
// arbitration on, urgent packets cut through congestion; off, everyone
// queues equally. Transaction-layer code is identical in both runs —
// layer independence again.
package main

import (
	"fmt"

	"gonoc/internal/noctypes"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/transport"
)

func run(qos bool) map[noctypes.Priority]*stats.Latency {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "noc", sim.Nanosecond, 0)
	nodes := []noctypes.NodeID{1, 2, 3, 9}
	net := transport.NewCrossbar(clk, transport.NetConfig{QoS: qos, MaxPendingPkts: 8}, nodes)

	lat := map[noctypes.Priority]*stats.Latency{
		noctypes.PrioLow: {}, noctypes.PrioDefault: {}, noctypes.PrioUrgent: {},
	}
	net.OnTransit = func(r transport.TransitRecord) {
		if l, ok := lat[r.Pkt.Priority]; ok {
			l.Record(r.TotalLatency())
		}
	}
	mk := func(src noctypes.NodeID, pri noctypes.Priority) *transport.Packet {
		return &transport.Packet{
			Header:  transport.Header{Kind: transport.KindReq, Dst: 9, Src: src, Priority: pri},
			Payload: make([]byte, 32),
		}
	}
	for c := 0; c < 3000; c++ {
		net.Endpoint(1).TrySend(mk(1, noctypes.PrioLow))
		net.Endpoint(2).TrySend(mk(2, noctypes.PrioDefault))
		net.Endpoint(3).TrySend(mk(3, noctypes.PrioUrgent))
		clk.RunCycles(1)
		for {
			if _, ok := net.Endpoint(9).Recv(); !ok {
				break
			}
		}
	}
	for c := 0; c < 100000 && !net.Drained(); c++ {
		clk.RunCycles(1)
		for {
			if _, ok := net.Endpoint(9).Recv(); !ok {
				break
			}
		}
	}
	return lat
}

func main() {
	t := stats.NewTable("QoS at a congested switch output (3 classes, saturating load)",
		"arbitration", "class", "mean latency (cyc)", "p95", "packets")
	for _, qos := range []bool{false, true} {
		name := "flat round-robin"
		if qos {
			name = "priority (QoS)"
		}
		lat := run(qos)
		for _, p := range []noctypes.Priority{noctypes.PrioLow, noctypes.PrioDefault, noctypes.PrioUrgent} {
			t.AddRow(name, p.String(), lat[p].Mean(), lat[p].Percentile(95), lat[p].Count())
		}
	}
	fmt.Println(t.Render())
	fmt.Println("urgent traffic latency collapses under QoS; the packets' payloads never change.")
}
