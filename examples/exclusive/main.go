// Exclusive: the paper's §3 in action. Two masters with *different*
// sockets — one AXI (exclusive access), one OCP (lazy synchronization) —
// contend for a lock variable held in one memory. Both mechanisms ride
// the same single user-defined packet bit and the same slave-NIU monitor:
// VC-neutral synchronization.
package main

import (
	"fmt"
	"log"

	"gonoc/internal/core"
	"gonoc/internal/mem"
	"gonoc/internal/niu"
	"gonoc/internal/noctypes"
	"gonoc/internal/protocols/axi"
	"gonoc/internal/protocols/ocp"
	"gonoc/internal/sim"
	"gonoc/internal/transport"
)

func main() {
	k := sim.NewKernel()
	clk := sim.NewClock(k, "sys", sim.Nanosecond, 0)
	net := transport.NewCrossbar(clk, transport.NetConfig{}, []noctypes.NodeID{1, 2, 3})
	amap := core.NewAddressMap()
	amap.MustAdd("ram", 0x1000, 0x1000, 3)
	amap.Freeze()
	services := core.ServiceSet{Exclusive: true}

	axiPort := axi.NewPort(clk, "axi", 4)
	axiCPU := axi.NewMaster(clk, axiPort, nil)
	niu.NewAXIMaster(clk, net, amap, axiPort, niu.MasterConfig{Node: 1, Services: services})

	ocpPort := ocp.NewPort(clk, "ocp", 4)
	ocpCPU := ocp.NewMaster(clk, ocpPort)
	niu.NewOCPMaster(clk, net, amap, ocpPort, niu.MasterConfig{Node: 2, Services: services, NumTags: 4})

	ramPort := axi.NewPort(clk, "ram", 4)
	store := mem.NewBacking(0x2000)
	axi.NewMemory(clk, ramPort, store, 0x1000, axi.MemoryConfig{Latency: 1})
	niu.NewAXISlave(clk, net, ramPort, niu.SlaveConfig{Node: 3, Services: services})

	// Both masters run lock-acquire loops on the same word: read the
	// current value exclusively, then conditionally increment. The
	// monitor in the slave NIU guarantees exactly one winner per round.
	const lockAddr = 0x1000
	const rounds = 10
	axiWins, ocpWins, axiFails, ocpFails := 0, 0, 0, 0
	axiDone, ocpDone := 0, 0
	rng := sim.NewRNG(2005)

	// Each master retries after a small random backoff, as spinlock
	// implementations do; the jitter lets both sockets win rounds.
	again := func(fn func()) {
		k.After(sim.Time(rng.Range(1, 20))*sim.Nanosecond, fn)
	}
	var axiLoop func()
	axiLoop = func() {
		axiCPU.ReadExclusive(0, lockAddr, 4, 1, axi.BurstIncr, func(res axi.ReadResult) {
			v := res.Data[0]
			axiCPU.WriteExclusive(0, lockAddr, 4, axi.BurstIncr, []byte{v + 1, 0, 0, 0}, func(r axi.Resp) {
				if r == axi.RespEXOKAY {
					axiWins++
				} else {
					axiFails++
				}
				axiDone++
				if axiDone < rounds {
					again(axiLoop)
				}
			})
		})
	}
	var ocpLoop func()
	ocpLoop = func() {
		ocpCPU.ReadLinked(0, lockAddr, 4, func(res ocp.ReadResult) {
			v := res.Data[0]
			ocpCPU.WriteConditional(0, lockAddr, 4, []byte{v + 1, 0, 0, 0}, func(s ocp.SResp) {
				if s == ocp.RespDVA {
					ocpWins++
				} else {
					ocpFails++
				}
				ocpDone++
				if ocpDone < rounds {
					again(ocpLoop)
				}
			})
		})
	}
	axiLoop()
	ocpLoop()

	clk.Start()
	err := k.RunWhile(func() bool { return axiDone < rounds || ocpDone < rounds }, 10*sim.Microsecond)
	if err != nil {
		log.Fatal(err)
	}

	final := store.Read(0, 1)[0]
	fmt.Println("cross-protocol synchronization through one NoC service:")
	fmt.Printf("  AXI exclusive pairs:  %d attempts, %d EXOKAY, %d failed\n", rounds, axiWins, axiFails)
	fmt.Printf("  OCP lazy-sync pairs:  %d attempts, %d DVA,    %d FAIL\n", rounds, ocpWins, ocpFails)
	fmt.Printf("  counter value: %d (== total successful increments %d)\n", final, axiWins+ocpWins)
	if int(final) != axiWins+ocpWins {
		log.Fatal("atomicity violated!")
	}
	fmt.Println("ok — no lost updates, no transport-layer changes, one packet bit")
}
